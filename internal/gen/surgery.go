package gen

import (
	"muml/internal/automata"
)

// This file provides the automaton surgery the shrinker (internal/mbt)
// applies to failing instances: structure-preserving copies with one
// state, one transition, or one signal removed. Every operation returns a
// fresh automaton (inputs are never mutated) or nil when the removal would
// produce a structurally invalid automaton (no states or no initial
// state). Removal cannot break function-determinism, so results remain
// wrappable as components whenever the original was.

// DropState returns a copy of a without the given state and without every
// transition touching it. It returns nil if the state is the last one or
// the last initial state.
func DropState(a *automata.Automaton, victim automata.StateID) *automata.Automaton {
	if a.NumStates() <= 1 {
		return nil
	}
	b := automata.New(a.Name(), a.Inputs(), a.Outputs())
	mapping := make([]automata.StateID, a.NumStates())
	for i := 0; i < a.NumStates(); i++ {
		id := automata.StateID(i)
		if id == victim {
			mapping[i] = automata.NoState
			continue
		}
		mapping[i] = b.MustAddState(a.StateName(id), a.Labels(id)...)
	}
	for _, t := range a.TransitionsSnapshot() {
		if mapping[t.From] == automata.NoState || mapping[t.To] == automata.NoState {
			continue
		}
		b.MustAddTransition(mapping[t.From], t.Label, mapping[t.To])
	}
	initials := 0
	for _, q := range a.Initial() {
		if mapping[q] != automata.NoState {
			b.MarkInitial(mapping[q])
			initials++
		}
	}
	if initials == 0 {
		return nil
	}
	return b
}

// DropTransition returns a copy of a without the index-th transition of
// a.Transitions().
func DropTransition(a *automata.Automaton, index int) *automata.Automaton {
	b := automata.New(a.Name(), a.Inputs(), a.Outputs())
	for i := 0; i < a.NumStates(); i++ {
		id := automata.StateID(i)
		b.MustAddState(a.StateName(id), a.Labels(id)...)
	}
	for i, t := range a.TransitionsSnapshot() {
		if i == index {
			continue
		}
		b.MustAddTransition(t.From, t.Label, t.To)
	}
	for _, q := range a.Initial() {
		b.MarkInitial(q)
	}
	return b
}

// DropSignal returns a copy of a with the signal removed from both
// alphabets and every transition whose label uses it dropped.
func DropSignal(a *automata.Automaton, sig automata.Signal) *automata.Automaton {
	strip := func(set automata.SignalSet) automata.SignalSet {
		return set.Minus(automata.NewSignalSet(sig))
	}
	b := automata.New(a.Name(), strip(a.Inputs()), strip(a.Outputs()))
	for i := 0; i < a.NumStates(); i++ {
		id := automata.StateID(i)
		b.MustAddState(a.StateName(id), a.Labels(id)...)
	}
	for _, t := range a.TransitionsSnapshot() {
		if t.Label.In.Contains(sig) || t.Label.Out.Contains(sig) {
			continue
		}
		b.MustAddTransition(t.From, t.Label, t.To)
	}
	for _, q := range a.Initial() {
		b.MarkInitial(q)
	}
	return b
}
