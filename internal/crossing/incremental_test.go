package crossing

import (
	"testing"

	"muml/internal/core"
	"muml/internal/ctl"
	"muml/internal/legacy"
)

// TestIncrementalMatchesRebuild runs the crossing scenarios through the
// incremental pipeline (with per-iteration patch verification against a
// from-scratch rebuild) and through the disabled-incremental pipeline, and
// asserts both follow the same trajectory.
func TestIncrementalMatchesRebuild(t *testing.T) {
	scenarios := []struct {
		name     string
		comp     func() legacy.Component
		property ctl.Formula
	}{
		{"swift-constraint", SwiftGate, Constraint()},
		{"swift-deadline", SwiftGate, ctl.And(Constraint(), ClosureDeadline())},
		{"sluggish-deadline", SluggishGate, ctl.And(Constraint(), ClosureDeadline())},
		{"stuck-constraint", StuckGate, Constraint()},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			synth, err := core.New(TrainRole(), sc.comp(), GateInterface(),
				core.Options{Property: sc.property, CheckIncremental: true})
			if err != nil {
				t.Fatal(err)
			}
			incremental, err := synth.Run()
			if err != nil {
				t.Fatal(err)
			}

			synth, err = core.New(TrainRole(), sc.comp(), GateInterface(),
				core.Options{Property: sc.property, DisableIncremental: true})
			if err != nil {
				t.Fatal(err)
			}
			scratch, err := synth.Run()
			if err != nil {
				t.Fatal(err)
			}

			if err := core.EquivalentReports(incremental, scratch); err != nil {
				t.Fatalf("incremental run diverges from from-scratch run: %v", err)
			}
			s := incremental.Stats
			if s.ProductPatches+s.ProductRebuilds != s.Iterations {
				t.Fatalf("patches(%d) + rebuilds(%d) != iterations(%d)",
					s.ProductPatches, s.ProductRebuilds, s.Iterations)
			}
			if s.ProductRebuilds != 1 {
				t.Fatalf("expected exactly the initial rebuild, got %d over %d iterations",
					s.ProductRebuilds, s.Iterations)
			}
		})
	}
}
