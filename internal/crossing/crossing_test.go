package crossing

import (
	"strings"
	"testing"

	"muml/internal/automata"
	"muml/internal/core"
	"muml/internal/ctl"
	"muml/internal/legacy"
)

func newSynth(t *testing.T, comp legacy.Component, property ctl.Formula) *core.Synthesizer {
	t.Helper()
	s, err := core.New(TrainRole(), comp, GateInterface(), core.Options{Property: property})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrainRoleTiming(t *testing.T) {
	train := TrainRole()
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	// The crossing is reached exactly ApproachTime units after the
	// announcement on every announcing path: AG(approach-just-sent →
	// AF[4,4] crossing) cannot be stated directly on outputs, so check
	// via the approaching label: entering approaching leads to crossing
	// in exactly ApproachTime steps.
	checker := ctl.NewChecker(train)
	holds := checker.Holds(ctl.MustParse(
		"AG (trainRole.approaching -> AF[1,4] trainRole.crossing)"))
	if !holds {
		t.Fatalf("train does not reach the crossing within %d units:\n%s", ApproachTime, train.Dot())
	}
	if checker.Holds(ctl.MustParse("AG (trainRole.far -> AF[1,10] trainRole.crossing)")) {
		t.Fatal("train must be able to stay far forever (announcing is a choice)")
	}
}

func TestGateControllersAreDeterministic(t *testing.T) {
	for _, comp := range []legacy.Component{SwiftGate(), SluggishGate(), StuckGate()} {
		comp.Reset()
		out, ok := comp.Step(automata.NewSignalSet(Approach))
		if !ok || !out.IsEmpty() {
			t.Fatalf("approach handling = %v/%v", out, ok)
		}
		// Unknown inputs are refused, empty steps accepted.
		if _, ok := comp.Step(automata.NewSignalSet(Approach, Passed)); ok {
			t.Fatal("combined input accepted")
		}
		if _, ok := comp.Step(automata.EmptySet); !ok {
			t.Fatal("idle refused")
		}
	}
}

func TestSwiftGateCloses(t *testing.T) {
	g := SwiftGate()
	g.Reset()
	g.Step(automata.NewSignalSet(Approach))
	names := []string{}
	for i := 0; i < 3; i++ {
		names = append(names, g.(legacy.Introspector).StateName())
		g.Step(automata.EmptySet)
	}
	if g.(legacy.Introspector).StateName() != "closed" {
		t.Fatalf("gate not closed after closing time; path %v, now %q",
			names, g.(legacy.Introspector).StateName())
	}
	// Reopens after the train passed.
	if _, ok := g.Step(automata.NewSignalSet(Passed)); !ok {
		t.Fatal("passed refused")
	}
	if g.(legacy.Introspector).StateName() != "open" {
		t.Fatal("gate did not reopen")
	}
}

func TestSwiftGateIntegrationProven(t *testing.T) {
	report, err := newSynth(t, SwiftGate(), Constraint()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != core.VerdictProven {
		t.Fatalf("verdict = %v/%v after %d iterations\n%s",
			report.Verdict, report.Kind, report.Stats.Iterations, report.WitnessText)
	}
	t.Logf("proven in %d iterations; learned %d states",
		report.Stats.Iterations, report.Model.Automaton().NumStates())
}

func TestSluggishGateViolatesConstraint(t *testing.T) {
	report, err := newSynth(t, SluggishGate(), Constraint()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != core.VerdictViolation || report.Kind != core.ViolationConstraint {
		t.Fatalf("verdict = %v/%v", report.Verdict, report.Kind)
	}
	// The witness shows the train on the crossing with the gate still
	// closing.
	if !strings.Contains(report.WitnessText, "crossing") ||
		!strings.Contains(report.WitnessText, "closing") {
		t.Fatalf("witness:\n%s", report.WitnessText)
	}
	// Run-witnessed propositional violation ⇒ final iteration needed no
	// test (fast conflict detection).
	last := report.Iterations[len(report.Iterations)-1]
	if last.Test != core.TestNotRun || !last.CexRunWitnessed {
		t.Fatalf("final iteration: test=%v runWitnessed=%v", last.Test, last.CexRunWitnessed)
	}
}

func TestStuckGateViolatesConstraint(t *testing.T) {
	report, err := newSynth(t, StuckGate(), Constraint()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != core.VerdictViolation || report.Kind != core.ViolationConstraint {
		t.Fatalf("verdict = %v/%v", report.Verdict, report.Kind)
	}
	if !strings.Contains(report.WitnessText, "open") {
		t.Fatalf("witness should show the open gate:\n%s", report.WitnessText)
	}
}

func TestClosureDeadlineProvenForSwiftGate(t *testing.T) {
	report, err := newSynth(t, SwiftGate(), ctl.And(Constraint(), ClosureDeadline())).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != core.VerdictProven {
		t.Fatalf("verdict = %v/%v\n%s", report.Verdict, report.Kind, report.WitnessText)
	}
}

func TestVerdictsMatchGroundTruth(t *testing.T) {
	for name, comp := range map[string]legacy.Component{
		"swift": SwiftGate(), "sluggish": SluggishGate(), "stuck": StuckGate(),
	} {
		t.Run(name, func(t *testing.T) {
			report, err := newSynth(t, comp, Constraint()).Run()
			if err != nil {
				t.Fatal(err)
			}
			truth := core.ExploreComponent(comp, GateInterface(),
				automata.Universe(automata.UniverseSingleton),
				core.QualifiedLabeler(GateName), 64)
			sys, err := automata.Compose("truth", TrainRole(), truth)
			if err != nil {
				t.Fatal(err)
			}
			checker := ctl.NewChecker(sys)
			holds := checker.Holds(Constraint()) && checker.Holds(ctl.NoDeadlock())
			if holds != (report.Verdict == core.VerdictProven) {
				t.Fatalf("synthesis %v vs ground truth holds=%v", report.Verdict, holds)
			}
		})
	}
}
