// Package crossing is a second, explicitly *timed* case study for the
// legacy-integration loop: a rail level crossing. It exercises the
// real-time statechart clocks, invariants, and the bounded discrete-time
// semantics end to end, complementing the RailCab example (whose hazard is
// a mode mismatch rather than a deadline).
//
// Scenario: an autonomous train announces its approach and — being unable
// to stop on the linear-drive section — reaches the crossing exactly
// ApproachTime time units later. A legacy *gate controller* consumes the
// announcement and must have the gate closed by then. The safety
// constraint is
//
//	A[] not (trainRole.crossing and not gateCtrl.closed)
//
// Three hand-written legacy controllers are provided: SwiftGate (closes in
// 2 units — integration provable), SluggishGate (closes in 6 — a real,
// run-witnessed violation found by fast conflict detection), and StuckGate
// (ignores the announcement — violation as well).
package crossing

import (
	"fmt"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/rtsc"
)

// Signals of the crossing coordination (train → gate only; the gate is a
// pure consumer whose state matters through the property).
const (
	Approach automata.Signal = "approach"
	Passed   automata.Signal = "passed"
)

// ApproachTime is the number of discrete time units between the approach
// announcement and the train reaching the crossing.
const ApproachTime = 4

// TrainRoleName and GateName identify the two components.
const (
	TrainRoleName = "trainRole"
	GateName      = "gateCtrl"
)

// TrainChart builds the known context: the train role as a real-time
// statechart with clocks. From far it may announce an approach; it then
// reaches the crossing exactly ApproachTime steps later (the invariant
// forces the move, the guard delays it), occupies the crossing for one to
// two units, and reports passed.
func TrainChart() *rtsc.Chart {
	c := rtsc.NewChart(TrainRoleName)
	c.MustAddState("far", rtsc.Initial())
	c.MustAddState("approaching", rtsc.Invariant("t", rtsc.CmpLE, ApproachTime-1))
	c.MustAddState("crossing", rtsc.Invariant("c", rtsc.CmpLE, 1))
	c.MustAddTransition("far", "approaching", rtsc.Raise(Approach), rtsc.Reset("t"))
	// Guard t ≥ ApproachTime-1 together with the invariant t ≤
	// ApproachTime-1 forces the crossing to be entered on exactly the
	// ApproachTime-th step after the announcement.
	c.MustAddTransition("approaching", "crossing",
		rtsc.Guard("t", rtsc.CmpGE, ApproachTime-1), rtsc.Reset("c"))
	c.MustAddTransition("crossing", "far", rtsc.Raise(Passed))
	return c
}

// TrainRole flattens the train chart with state labels
// ("trainRole.crossing" holds in every crossing configuration regardless
// of clock values).
func TrainRole() *automata.Automaton {
	return TrainChart().MustFlatten(rtsc.WithStateLabels())
}

// Constraint is the crossing safety property: the train is never on the
// crossing while the gate is not closed.
func Constraint() ctl.Formula {
	return ctl.MustParse("A[] not (trainRole.crossing and not gateCtrl.closed)")
}

// ClosureDeadline is the timed liveness obligation on the gate: whenever
// an approach was consumed, the gate is closed within ApproachTime-1 time
// units (one unit of safety margin before the train arrives).
func ClosureDeadline() ctl.Formula {
	return ctl.MustParse(fmt.Sprintf(
		"AG (gateCtrl.closing -> AF[1,%d] gateCtrl.closed)", ApproachTime-1))
}

// GateInterface is the structural interface of a legacy gate controller:
// it only consumes train messages; its safety-relevant state is exposed
// through the learned labels.
func GateInterface() legacy.Interface {
	return legacy.Interface{
		Name:    GateName,
		Inputs:  automata.NewSignalSet(Approach, Passed),
		Outputs: automata.EmptySet,
		Ports: map[automata.Signal]string{
			Approach: "trackside",
			Passed:   "trackside",
		},
	}
}

// gateBase implements the shared mechanics of the gate controllers: a
// named state machine over {open, closing#k, closed}, parameterized by how
// many units the closing motion takes (0 = never closes).
type gateBase struct {
	name         string
	closingTicks int
	state        string
	remaining    int
}

var (
	_ legacy.Component    = (*gateBase)(nil)
	_ legacy.Introspector = (*gateBase)(nil)
)

// Reset implements legacy.Component.
func (g *gateBase) Reset() {
	g.state = "open"
	g.remaining = 0
}

// StateName implements legacy.Introspector.
func (g *gateBase) StateName() string {
	if g.state == "" {
		return "open"
	}
	if g.state == "closing" {
		return fmt.Sprintf("closing::left%d", g.remaining)
	}
	return g.state
}

// Step implements legacy.Component.
func (g *gateBase) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	if g.state == "" {
		g.Reset()
	}
	switch g.state {
	case "open":
		switch {
		case in.IsEmpty():
			return automata.EmptySet, true
		case in.Equal(automata.NewSignalSet(Approach)):
			if g.closingTicks <= 0 {
				return automata.EmptySet, true // ignores the announcement
			}
			g.state = "closing"
			g.remaining = g.closingTicks
			return automata.EmptySet, true
		}
	case "closing":
		if in.IsEmpty() {
			g.remaining--
			if g.remaining <= 0 {
				g.state = "closed"
			}
			return automata.EmptySet, true
		}
	case "closed":
		switch {
		case in.IsEmpty():
			return automata.EmptySet, true
		case in.Equal(automata.NewSignalSet(Passed)):
			g.state = "open"
			return automata.EmptySet, true
		}
	}
	return automata.EmptySet, false
}

// SwiftGate closes within 2 time units of the announcement: integration
// with the ApproachTime-4 train is provably safe.
func SwiftGate() legacy.Component { return &gateBase{name: "swift", closingTicks: 2} }

// SluggishGate needs 6 time units to close — more than the train's
// approach time. The integration violates the safety constraint with a
// real, run-witnessed counterexample.
func SluggishGate() legacy.Component { return &gateBase{name: "sluggish", closingTicks: 6} }

// StuckGate never reacts to the announcement at all.
func StuckGate() legacy.Component { return &gateBase{name: "stuck", closingTicks: 0} }
