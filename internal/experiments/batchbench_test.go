package experiments

import (
	"encoding/json"
	"testing"
)

func TestCollectBatchBench(t *testing.T) {
	rep, err := CollectBatchBench(1, 8, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances != 8 || rep.Sequential.Workers != 1 || rep.Parallel.Workers != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	for _, run := range []BatchRun{rep.Sequential, rep.Parallel} {
		if run.Errored != 0 {
			t.Fatalf("workers=%d: %d instances errored", run.Workers, run.Errored)
		}
		if run.Proven+run.Violations != 8 {
			t.Fatalf("workers=%d: %d verdicts, want 8", run.Workers, run.Proven+run.Violations)
		}
		if run.WallNS <= 0 || run.NSPerInstance <= 0 || run.Throughput <= 0 {
			t.Fatalf("workers=%d: non-positive timing: %+v", run.Workers, run)
		}
	}
	if rep.Speedup <= 0 {
		t.Fatalf("speedup %v", rep.Speedup)
	}

	data, err := MarshalBatchBench(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"sequential", "parallel", "speedup", "gomaxprocs"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report missing %q:\n%s", key, data)
		}
	}
}
