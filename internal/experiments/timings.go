package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"muml/internal/core"
	"muml/internal/crossing"
	"muml/internal/obs"
	"muml/internal/railcab"
)

// IterationTiming is one iteration's phase breakdown. ReplayNS and
// ProbeNS split the test phase into its record/replay and
// deadlock-probe parts (they need not sum to TestNS, which also covers
// classification bookkeeping).
type IterationTiming struct {
	Index     int   `json:"index"`
	Patched   bool  `json:"patched"`
	ComposeNS int64 `json:"compose_ns"`
	CheckNS   int64 `json:"check_ns"`
	TestNS    int64 `json:"test_ns"`
	ReplayNS  int64 `json:"replay_ns"`
	ProbeNS   int64 `json:"probe_ns"`
	System    int   `json:"system_states"`
}

// RunTiming summarizes one synthesis run of a timing scenario.
type RunTiming struct {
	Mode       string            `json:"mode"` // "incremental" or "rebuild"
	Verdict    string            `json:"verdict"`
	Iterations []IterationTiming `json:"iterations"`
	Patches    int               `json:"product_patches"`
	Rebuilds   int               `json:"product_rebuilds"`
	ComposeNS  int64             `json:"compose_ns"`
	CheckNS    int64             `json:"check_ns"`
	TestNS     int64             `json:"test_ns"`
	ReplayNS   int64             `json:"replay_ns"`
	ProbeNS    int64             `json:"probe_ns"`
	WallNS     int64             `json:"wall_ns"`
}

// ScenarioTiming pairs the incremental and from-scratch runs of one
// scenario.
type ScenarioTiming struct {
	Name        string    `json:"name"`
	Incremental RunTiming `json:"incremental"`
	Rebuild     RunTiming `json:"rebuild"`
	// Speedup is rebuild wall time over incremental wall time.
	Speedup float64 `json:"speedup"`
}

// TimingReport is the JSON document emitted by `experiments -timings`.
type TimingReport struct {
	Scenarios []ScenarioTiming `json:"scenarios"`
}

type timingScenario struct {
	name  string
	synth func(opts core.Options) (*core.Synthesizer, error)
}

func timingScenarios() []timingScenario {
	return []timingScenario{
		{"railcab-correct-proof", func(opts core.Options) (*core.Synthesizer, error) {
			opts.Property = railcab.Constraint()
			return core.New(railcab.FrontRole(), &railcab.CorrectShuttle{},
				railcab.RearInterface(railcab.RearRoleName), opts)
		}},
		{"railcab-blocking-deadlock", func(opts core.Options) (*core.Synthesizer, error) {
			opts.Property = railcab.Constraint()
			return core.New(railcab.FrontRole(), &railcab.BlockingShuttle{},
				railcab.RearInterface(railcab.RearRoleName), opts)
		}},
		{"crossing-swift-proof", func(opts core.Options) (*core.Synthesizer, error) {
			opts.Property = crossing.Constraint()
			return core.New(crossing.TrainRole(), crossing.SwiftGate(),
				crossing.GateInterface(), opts)
		}},
		{"random-64-states", func(opts core.Options) (*core.Synthesizer, error) {
			rng := rand.New(rand.NewSource(64))
			sc := GenerateScenario(rng, 64, 2, 3)
			return core.New(sc.Context, sc.Component, sc.Iface, opts)
		}},
	}
}

// CollectTimings runs each timing scenario with the incremental pipeline
// and with from-scratch rebuilds, recording per-iteration phase durations
// and the patch/rebuild accounting from core.Stats. Journal and metrics
// (both optional, nil-safe) are threaded into every run's core.Options,
// so `experiments -timings -journal out.jsonl` journals all scenarios.
func CollectTimings(journal *obs.Journal, metrics *obs.Registry) (*TimingReport, error) {
	report := &TimingReport{}
	for _, sc := range timingScenarios() {
		inc, err := timeRun(sc, core.Options{Journal: journal, Metrics: metrics}, "incremental")
		if err != nil {
			return nil, fmt.Errorf("%s incremental: %w", sc.name, err)
		}
		reb, err := timeRun(sc, core.Options{DisableIncremental: true, Journal: journal, Metrics: metrics}, "rebuild")
		if err != nil {
			return nil, fmt.Errorf("%s rebuild: %w", sc.name, err)
		}
		entry := ScenarioTiming{Name: sc.name, Incremental: *inc, Rebuild: *reb}
		if inc.WallNS > 0 {
			entry.Speedup = float64(reb.WallNS) / float64(inc.WallNS)
		}
		report.Scenarios = append(report.Scenarios, entry)
	}
	return report, nil
}

// timingRepeats is the number of measurements per scenario leg; the
// median is reported. A single sample of these sub-millisecond scenarios
// is dominated by scheduler and GC noise on shared runners, and the
// minimum has a heavy lower tail there too — the median is the estimator
// stable enough for the bench-check regression gate.
const timingRepeats = 9

func timeRun(sc timingScenario, opts core.Options, mode string) (*RunTiming, error) {
	runs := make([]*RunTiming, 0, timingRepeats)
	for r := 0; r < timingRepeats; r++ {
		out, err := timeRunOnce(sc, opts, mode)
		if err != nil {
			return nil, err
		}
		runs = append(runs, out)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].WallNS < runs[j].WallNS })
	return runs[len(runs)/2], nil
}

func timeRunOnce(sc timingScenario, opts core.Options, mode string) (*RunTiming, error) {
	synth, err := sc.synth(opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := synth.Run()
	if err != nil {
		return nil, err
	}
	out := &RunTiming{
		Mode:      mode,
		Verdict:   rep.Verdict.String(),
		Patches:   rep.Stats.ProductPatches,
		Rebuilds:  rep.Stats.ProductRebuilds,
		ComposeNS: rep.Stats.ComposeTime.Nanoseconds(),
		CheckNS:   rep.Stats.CheckTime.Nanoseconds(),
		TestNS:    rep.Stats.TestTime.Nanoseconds(),
		ReplayNS:  rep.Stats.ReplayTime.Nanoseconds(),
		ProbeNS:   rep.Stats.ProbeTime.Nanoseconds(),
		WallNS:    time.Since(start).Nanoseconds(),
	}
	for _, it := range rep.Iterations {
		out.Iterations = append(out.Iterations, IterationTiming{
			Index:     it.Index,
			Patched:   it.Patched,
			ComposeNS: it.ComposeDuration.Nanoseconds(),
			CheckNS:   it.CheckDuration.Nanoseconds(),
			TestNS:    it.TestDuration.Nanoseconds(),
			ReplayNS:  it.ReplayDuration.Nanoseconds(),
			ProbeNS:   it.ProbeDuration.Nanoseconds(),
			System:    it.SystemStates,
		})
	}
	return out, nil
}

// MarshalTimings renders the report as indented JSON.
func MarshalTimings(r *TimingReport) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
