package experiments

import (
	"fmt"
	"strings"

	"muml/internal/core"
	"muml/internal/crossing"
	"muml/internal/ctl"
	"muml/internal/legacy"
)

// RunE13 runs the timed rail-crossing case study: the discrete-clock
// machinery (I/O-interval structures, §2) carried through the whole
// integration loop. A deadline-respecting gate controller is proven safe;
// a sluggish one and a stuck one are convicted with real counterexamples.
func RunE13() (*Result, error) {
	type row struct {
		name     string
		comp     legacy.Component
		property ctl.Formula
		want     core.Verdict
	}
	rows := []row{
		{"swift gate (2 ticks), safety", crossing.SwiftGate(), crossing.Constraint(), core.VerdictProven},
		{"swift gate, safety + deadline", crossing.SwiftGate(),
			ctl.And(crossing.Constraint(), crossing.ClosureDeadline()), core.VerdictProven},
		{"sluggish gate (6 ticks)", crossing.SluggishGate(), crossing.Constraint(), core.VerdictViolation},
		{"stuck gate", crossing.StuckGate(), crossing.Constraint(), core.VerdictViolation},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "train reaches the crossing exactly %d time units after announcing\n\n",
		crossing.ApproachTime)
	match := true
	for _, r := range rows {
		synth, err := core.New(crossing.TrainRole(), r.comp, crossing.GateInterface(),
			core.Options{Property: r.property})
		if err != nil {
			return nil, err
		}
		report, err := synth.Run()
		if err != nil {
			return nil, err
		}
		ok := report.Verdict == r.want
		if !ok {
			match = false
		}
		fmt.Fprintf(&b, "%-32s verdict=%v (%v) iterations=%d learned=%d states  ok=%v\n",
			r.name, report.Verdict, report.Kind, report.Stats.Iterations,
			report.Model.Automaton().NumStates(), ok)
		if report.Verdict == core.VerdictViolation && r.name == "sluggish gate (6 ticks)" {
			fmt.Fprintf(&b, "\nwitness (train on the crossing while the gate is still closing):\n%s\n",
				report.WitnessText)
		}
	}
	return &Result{
		ID:            "E13",
		Title:         "Timed case study: rail-crossing gate",
		PaperArtifact: "§2 discrete-time/clock model (I/O-interval structures) exercised end to end",
		Expectation:   "deadline-respecting controller proven; deadline-missing controllers convicted with real counterexamples",
		Measured:      fmt.Sprintf("4 controller/property combinations, all verdicts as expected: %v", match),
		Match:         match,
		Details:       b.String(),
	}, nil
}
