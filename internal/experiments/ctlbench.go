package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/gen"
)

// CTLScenario records one CTL-engine benchmark scenario: the same formula
// suite evaluated over the same systems by the frozen legacy Reference
// engine (legacy_check_ns), the bitset Checker with one worker (check_ns),
// and the bitset Checker at GOMAXPROCS workers (parallel_check_ns). Every
// figure is the median of timingRepeats fresh-engine runs. Speedup is
// legacy over sequential bitset; the bench-check gate compares check_ns
// only (the other columns are context).
type CTLScenario struct {
	Name            string  `json:"name"`
	Systems         int     `json:"systems"`
	States          int     `json:"states"`
	Transitions     int     `json:"transitions"`
	Formulas        int     `json:"formulas"`
	LegacyCheckNS   int64   `json:"legacy_check_ns"`
	CheckNS         int64   `json:"check_ns"`
	ParallelCheckNS int64   `json:"parallel_check_ns"`
	ParallelWorkers int     `json:"parallel_workers"`
	Speedup         float64 `json:"speedup"`
}

// ctlWorkload is one scenario's inputs: a set of systems, each with its
// probe formula suite.
type ctlWorkload struct {
	name    string
	assert  bool // scenario must meet the minimum speedup
	systems []*automata.Automaton
	suites  [][]ctl.Formula
}

// CollectCTLBench measures the CTL scenarios and fails when an asserted
// scenario's legacy-over-bitset speedup falls below minSpeedup. Verdict
// agreement between all three engine configurations is checked on every
// system and formula before anything is timed.
func CollectCTLBench(minSpeedup float64) ([]CTLScenario, error) {
	workloads, err := ctlWorkloads()
	if err != nil {
		return nil, err
	}
	out := make([]CTLScenario, 0, len(workloads))
	for _, w := range workloads {
		sc, err := measureCTLWorkload(w)
		if err != nil {
			return nil, err
		}
		if w.assert && sc.Speedup < minSpeedup {
			return nil, fmt.Errorf("ctl bench: scenario %s speedup %.2fx is below the %.1fx floor (legacy %dns vs bitset %dns)",
				sc.Name, sc.Speedup, minSpeedup, sc.LegacyCheckNS, sc.CheckNS)
		}
		out = append(out, *sc)
	}
	return out, nil
}

// ctlWorkloads builds the benchmark inputs. The layered scenarios are
// synthetic product-shaped systems at sizes the generator's synchronized
// compositions cannot reach (a context × legacy product dies within a
// handful of states once either side refuses); they are where the
// asymptotic gap — frontier fixpoints vs sweep-to-stabilization — must
// show, so they carry the speedup assertion. The gen scenarios keep the
// engines honest on the distribution production call sites actually see:
// small compositions where per-check overhead dominates and no speedup is
// claimed.
func ctlWorkloads() ([]ctlWorkload, error) {
	deep := ctlLayered(64, 256)
	veryDeep := ctlLayered(32, 1024)
	broad := ctlLayered(256, 128)
	workloads := []ctlWorkload{
		{name: "layered-deep", assert: true,
			systems: []*automata.Automaton{deep}, suites: [][]ctl.Formula{ctlProbes(deep)}},
		{name: "layered-very-deep", assert: true,
			systems: []*automata.Automaton{veryDeep}, suites: [][]ctl.Formula{ctlProbes(veryDeep)}},
		{name: "layered-broad", assert: true,
			systems: []*automata.Automaton{broad}, suites: [][]ctl.Formula{ctlProbes(broad)}},
	}

	corpus := ctlWorkload{name: "gen-corpus"}
	for seed := int64(1); seed <= 32; seed++ {
		sys, err := ctlGenSystem(seed, gen.DefaultConfig())
		if err != nil {
			return nil, err
		}
		corpus.systems = append(corpus.systems, sys)
		corpus.suites = append(corpus.suites, ctlProbes(sys))
	}
	workloads = append(workloads, corpus)

	wide := ctlWorkload{name: "gen-wide"}
	for seed := int64(1); seed <= 8; seed++ {
		sys, err := ctlGenSystem(seed, gen.WideConfig())
		if err != nil {
			return nil, err
		}
		wide.systems = append(wide.systems, sys)
		wide.suites = append(wide.suites, ctlProbes(sys))
	}
	workloads = append(workloads, wide)
	return workloads, nil
}

func ctlGenSystem(seed int64, cfg gen.Config) (*automata.Automaton, error) {
	inst, err := gen.New(seed, cfg)
	if err != nil {
		return nil, fmt.Errorf("ctl bench: gen seed %d: %w", seed, err)
	}
	sys, err := inst.TrueComposition()
	if err != nil {
		return nil, fmt.Errorf("ctl bench: compose seed %d: %w", seed, err)
	}
	return sys, nil
}

// ctlProbes builds a scenario suite covering every fixpoint family —
// unbounded AG/EG/AF, both until operators, bounded layers, and backward
// reachability — over the system's own propositions.
func ctlProbes(sys *automata.Automaton) []ctl.Formula {
	props := sys.AllPropositions()
	atom := func(i int) ctl.Formula {
		if len(props) == 0 {
			return ctl.True
		}
		return ctl.Atom(props[i%len(props)])
	}
	p, q := atom(0), atom(1)
	return []ctl.Formula{
		ctl.NoDeadlock(),
		ctl.AG(ctl.Implies(p, ctl.AF(q))),
		ctl.EG(p),
		ctl.AU(ctl.Not(q), p),
		ctl.EU(ctl.Not(p), q),
		ctl.AFWithin(0, 32, q),
		ctl.AGWithin(0, 32, ctl.Or(p, ctl.Not(q))),
		ctl.EF(ctl.Deadlock),
	}
}

// measureCTLWorkload checks verdict agreement, then times the three engine
// configurations. Each timed sample creates fresh engines per system, so a
// sample covers everything a production call pays: reverse-adjacency (or
// CSR) construction, scratch allocation, and the fixpoints themselves.
func measureCTLWorkload(w ctlWorkload) (*CTLScenario, error) {
	maxProcs := runtime.GOMAXPROCS(0)
	for i, sys := range w.systems {
		ref := ctl.NewReference(sys)
		seq := ctl.NewChecker(sys)
		seq.SetWorkers(1)
		par := ctl.NewChecker(sys)
		par.SetWorkers(maxProcs)
		for _, f := range w.suites[i] {
			want := ref.Holds(f)
			if got := seq.Holds(f); got != want {
				return nil, fmt.Errorf("ctl bench: %s system %d: bitset disagrees with legacy on %s (legacy %v, bitset %v)",
					w.name, i, f, want, got)
			}
			if got := par.Holds(f); got != want {
				return nil, fmt.Errorf("ctl bench: %s system %d: parallel bitset disagrees with legacy on %s (legacy %v, parallel %v)",
					w.name, i, f, want, got)
			}
		}
	}

	sc := &CTLScenario{Name: w.name, Systems: len(w.systems), ParallelWorkers: maxProcs}
	for i, sys := range w.systems {
		sc.States += sys.NumStates()
		sc.Transitions += sys.NumTransitions()
		sc.Formulas += len(w.suites[i])
	}

	sc.LegacyCheckNS = ctlMedianNS(func() {
		for i, sys := range w.systems {
			ref := ctl.NewReference(sys)
			for _, f := range w.suites[i] {
				ref.Holds(f)
			}
		}
	})
	sc.CheckNS = ctlMedianNS(func() {
		for i, sys := range w.systems {
			c := ctl.NewChecker(sys)
			c.SetWorkers(1)
			for _, f := range w.suites[i] {
				c.Holds(f)
			}
		}
	})
	sc.ParallelCheckNS = ctlMedianNS(func() {
		for i, sys := range w.systems {
			c := ctl.NewChecker(sys)
			c.SetWorkers(maxProcs)
			for _, f := range w.suites[i] {
				c.Holds(f)
			}
		}
	})
	if sc.CheckNS > 0 {
		sc.Speedup = float64(sc.LegacyCheckNS) / float64(sc.CheckNS)
	}
	return sc, nil
}

// ctlMedianNS times fn timingRepeats times and returns the median, the
// same noise discipline as the other collectors.
func ctlMedianNS(fn func()) int64 {
	samples := make([]int64, 0, timingRepeats)
	for r := 0; r < timingRepeats; r++ {
		start := time.Now()
		fn()
		samples = append(samples, time.Since(start).Nanoseconds())
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// ctlLayered builds width×depth states in layers with a three-way fan-out
// to the next layer and a few back edges for cyclic structure — the
// deep-product shape on which sweep-to-stabilization fixpoints pay a full
// state sweep per peeled layer.
func ctlLayered(width, depth int) *automata.Automaton {
	a := automata.New("layers", automata.NewSignalSet("x"), automata.EmptySet)
	x := automata.Interact([]automata.Signal{"x"}, nil)
	ids := make([][]automata.StateID, depth)
	for l := 0; l < depth; l++ {
		ids[l] = make([]automata.StateID, width)
		for w := 0; w < width; w++ {
			var labels []automata.Proposition
			if (l*31+w*7)%5 == 0 {
				labels = append(labels, "p")
			}
			if (l+w)%11 == 0 {
				labels = append(labels, "q")
			}
			ids[l][w] = a.MustAddState(fmt.Sprintf("l%dw%d", l, w), labels...)
		}
	}
	for l := 0; l+1 < depth; l++ {
		for w := 0; w < width; w++ {
			for k := 0; k < 3; k++ {
				// Duplicate (from,label,to) triples are skipped.
				_ = a.AddTransition(ids[l][w], x, ids[l+1][(w*5+k*13)%width])
			}
		}
	}
	for w := 0; w < width; w += 17 {
		_ = a.AddTransition(ids[depth-1][w], x, ids[0][w])
	}
	a.MarkInitial(ids[0][0])
	return a
}

// MarshalCTLBench renders the scenarios as an indented top-level JSON
// array (the BENCH_ctl.json shape).
func MarshalCTLBench(scenarios []CTLScenario) ([]byte, error) {
	data, err := json.MarshalIndent(scenarios, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("marshal ctl report: %w", err)
	}
	return data, nil
}
