package experiments

import (
	"fmt"
	"strings"

	"muml/internal/automata"
	"muml/internal/core"
	"muml/internal/legacy"
)

// multiService builds a deterministic ping service for the coordinator
// demo. When mute is true it swallows the ping and never answers.
func multiService(idx string, mute bool) (legacy.Component, legacy.Interface) {
	ping := automata.Signal("ping" + idx)
	pong := automata.Signal("pong" + idx)
	steps := map[string]map[string]legacy.FuncStep{
		"idle": {"": {To: "idle"}, string(ping): {To: "got"}},
	}
	if mute {
		steps["got"] = map[string]legacy.FuncStep{"": {To: "got"}}
	} else {
		steps["got"] = map[string]legacy.FuncStep{"": {Out: []automata.Signal{pong}, To: "idle"}}
	}
	comp := &legacy.FuncComponent{Name: "service" + idx, Initial: "idle", Next: steps}
	iface := legacy.Interface{
		Name:    "service" + idx,
		Inputs:  automata.NewSignalSet(ping),
		Outputs: automata.NewSignalSet(pong),
	}
	return comp, iface
}

func multiCoordinatorContext() *automata.Automaton {
	c := automata.New("coordinator",
		automata.NewSignalSet("pong1", "pong2"),
		automata.NewSignalSet("ping1", "ping2"))
	c0 := c.MustAddState("askFirst")
	c1 := c.MustAddState("awaitFirst")
	c2 := c.MustAddState("askSecond")
	c3 := c.MustAddState("awaitSecond")
	c.MustAddTransition(c0, automata.Interact(nil, []automata.Signal{"ping1"}), c1)
	c.MustAddTransition(c1, automata.Interact([]automata.Signal{"pong1"}, nil), c2)
	c.MustAddTransition(c2, automata.Interact(nil, []automata.Signal{"ping2"}), c3)
	c.MustAddTransition(c3, automata.Interact([]automata.Signal{"pong2"}, nil), c0)
	c.MarkInitial(c0)
	return c
}

// RunE14 exercises the paper's §7 future-work extension: parallel learning
// of multiple legacy components against one coordinating context. Both
// models improve per iteration, healthy services are proven, and a mute
// second service is convicted with a real deadlock.
func RunE14() (*Result, error) {
	var b strings.Builder

	run := func(title string, mute2 bool) (*core.MultiReport, error) {
		c1, i1 := multiService("1", false)
		c2, i2 := multiService("2", mute2)
		m, err := core.NewMulti(multiCoordinatorContext(),
			[]legacy.Component{c1, c2}, []legacy.Interface{i1, i2}, core.Options{})
		if err != nil {
			return nil, err
		}
		report, err := m.Run()
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s: verdict=%v (%v) after %d iterations; learned %d+%d states, %d+%d transitions\n",
			title, report.Verdict, report.Kind, report.Iterations,
			report.Models[0].Automaton().NumStates(), report.Models[1].Automaton().NumStates(),
			report.Models[0].Automaton().NumTransitions(), report.Models[1].Automaton().NumTransitions())
		return report, nil
	}

	healthy, err := run("two healthy services", false)
	if err != nil {
		return nil, err
	}
	faulty, err := run("second service mute  ", true)
	if err != nil {
		return nil, err
	}
	if faulty.Verdict == core.VerdictViolation {
		fmt.Fprintf(&b, "\nwitness of the mute-service deadlock:\n%s", faulty.WitnessText)
	}

	bothLearned := healthy.Models[0].Automaton().NumTransitions() > 0 &&
		healthy.Models[1].Automaton().NumTransitions() > 0
	match := healthy.Verdict == core.VerdictProven &&
		faulty.Verdict == core.VerdictViolation &&
		faulty.Kind == core.ViolationDeadlock &&
		bothLearned

	return &Result{
		ID:            "E14",
		Title:         "Multi-component parallel learning (§7 extension)",
		PaperArtifact: "§7: \"the iterative synthesis will then improve all these models in parallel\"",
		Expectation:   "both components learned in one loop; healthy pair proven, mute service convicted with a real deadlock",
		Measured: fmt.Sprintf("healthy=%v, faulty=%v/%v, both models learned=%v",
			healthy.Verdict, faulty.Verdict, faulty.Kind, bothLearned),
		Match:   match,
		Details: b.String(),
	}, nil
}
