package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"

	"muml/internal/automata"
	"muml/internal/batch"
	"muml/internal/gen"
	"muml/internal/obs"
)

// BatchRun records one batch.Verify pass over the instance set at a given
// worker count.
type BatchRun struct {
	Workers       int     `json:"workers"`
	WallNS        int64   `json:"wall_ns"`
	NSPerInstance int64   `json:"ns_per_instance"`
	Throughput    float64 `json:"instances_per_sec"`
	Proven        int     `json:"proven"`
	Violations    int     `json:"violations"`
	Errored       int     `json:"errored"`
	Steals        int     `json:"steals"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
}

// BatchReport is the JSON document emitted by `experiments -batch`
// (committed as BENCH_batch.json). Speedup is sequential wall time over
// parallel wall time; on a single-core runner it is expected to be ~1.
type BatchReport struct {
	Instances  int      `json:"instances"`
	Seed       int64    `json:"seed"`
	MaxProcs   int      `json:"gomaxprocs"`
	Sequential BatchRun `json:"sequential"`
	Parallel   BatchRun `json:"parallel"`
	Speedup    float64  `json:"speedup"`
}

// CollectBatchBench runs the same generated instance set through the batch
// engine sequentially and with `workers` workers (0 = GOMAXPROCS), checks
// that both passes agree on every verdict, and reports the timing of each.
func CollectBatchBench(seed int64, instances, workers int, journal *obs.Journal, metrics *obs.Registry) (*BatchReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := gen.DefaultConfig()

	// Median-of-N like timeRun: one sample of a ~10ms batch is dominated
	// by scheduler noise on shared runners.
	measure := func(w int) (BatchRun, *batch.Summary, error) {
		sums := make([]*batch.Summary, 0, timingRepeats)
		for r := 0; r < timingRepeats; r++ {
			s, err := batch.Verify(batch.GenItems(seed, instances, cfg), batch.Options{
				Workers: w,
				Memo:    automata.NewMemoCache(journal),
				Journal: journal,
				Metrics: metrics,
			})
			if err != nil {
				return BatchRun{}, nil, err
			}
			sums = append(sums, s)
		}
		sort.Slice(sums, func(i, j int) bool { return sums[i].Duration < sums[j].Duration })
		sum := sums[len(sums)/2]
		run := BatchRun{
			Workers:       sum.Workers,
			WallNS:        int64(sum.Duration),
			NSPerInstance: int64(sum.Duration) / int64(instances),
			Throughput:    sum.Throughput(),
			Proven:        sum.Proven,
			Violations:    sum.Violations,
			Errored:       sum.Errored,
			Steals:        sum.Steals,
			CacheHits:     sum.CacheHits,
			CacheMisses:   sum.CacheMisses,
		}
		return run, sum, nil
	}

	seqRun, seqSum, err := measure(1)
	if err != nil {
		return nil, err
	}
	parRun, parSum, err := measure(workers)
	if err != nil {
		return nil, err
	}
	for i := range seqSum.Results {
		s, p := seqSum.Results[i], parSum.Results[i]
		if s.Verdict != p.Verdict || s.Kind != p.Kind || (s.Err == nil) != (p.Err == nil) {
			return nil, fmt.Errorf("batch bench: instance %d (%s): sequential and parallel runs disagree", i, s.Name)
		}
	}

	rep := &BatchReport{
		Instances:  instances,
		Seed:       seed,
		MaxProcs:   runtime.GOMAXPROCS(0),
		Sequential: seqRun,
		Parallel:   parRun,
	}
	if parRun.WallNS > 0 {
		rep.Speedup = float64(seqRun.WallNS) / float64(parRun.WallNS)
	}
	return rep, nil
}

// MarshalBatchBench renders the report as indented JSON.
func MarshalBatchBench(r *BatchReport) ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("marshal batch report: %w", err)
	}
	return data, nil
}
