package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"muml/internal/automata"
	"muml/internal/conformance"
	"muml/internal/core"
	"muml/internal/ctl"
	"muml/internal/learning"
	"muml/internal/railcab"
)

// groundTruthVerdict model checks the composition of the scenario's
// context with the true legacy automaton.
func groundTruthVerdict(s *Scenario) (core.Verdict, error) {
	sys, err := automata.Compose("truth", s.Context, s.Legacy)
	if err != nil {
		return 0, err
	}
	if ctl.NewChecker(sys).Holds(ctl.NoDeadlock()) {
		return core.VerdictProven, nil
	}
	return core.VerdictViolation, nil
}

// RunE7 sweeps random scenarios of growing legacy size and measures how
// much of each component the loop had to learn to reach its verdict — the
// partial-learning claim of §4.4 / Theorem 2.
func RunE7() (*Result, error) {
	rng := rand.New(rand.NewSource(2007))
	sizes := []int{4, 8, 16, 32, 64}
	const perSize = 5

	var b strings.Builder
	b.WriteString("size | relevant | learnedStates | learnedFraction | iterations | tests | verdict==truth\n")
	match := true
	totalFraction, rows := 0.0, 0
	for _, size := range sizes {
		for rep := 0; rep < perSize; rep++ {
			sc := GenerateScenario(rng, size, 2, 3)
			synth, err := core.New(sc.Context, sc.Component, sc.Iface, core.Options{})
			if err != nil {
				return nil, err
			}
			report, err := synth.Run()
			if err != nil {
				return nil, err
			}
			truth, err := groundTruthVerdict(sc)
			if err != nil {
				return nil, err
			}
			learned := report.Model.Automaton().NumStates()
			fraction := float64(learned) / float64(size)
			totalFraction += fraction
			rows++
			ok := report.Verdict == truth
			if !ok {
				match = false
			}
			// Theorem 2 shape: the learned model never exceeds the true
			// machine.
			if learned > size {
				match = false
			}
			fmt.Fprintf(&b, "%4d | %8d | %13d | %15.2f | %10d | %5d | %v\n",
				size, sc.RelevantStates, learned, fraction, report.Stats.Iterations,
				report.Stats.TestsRun, ok)
		}
	}
	avg := totalFraction / float64(rows)
	fmt.Fprintf(&b, "\naverage learned fraction: %.2f\n", avg)
	// Shape: on average much less than the whole component is learned.
	if avg >= 0.8 {
		match = false
	}
	return &Result{
		ID:            "E7",
		Title:         "Partial-learning scaling sweep",
		PaperArtifact: "§4.4 / Theorem 2: decide without learning the whole component",
		Expectation:   "verdicts always match ground truth; learned fraction well below 1 and shrinking with component size",
		Measured:      fmt.Sprintf("%d scenarios, avg learned fraction %.2f, all verdicts correct: %v", rows, avg, match),
		Match:         match,
		Details:       b.String(),
	}, nil
}

// RunE8 compares the paper's context-guided synthesis with L* regular
// inference on the same components (§6).
func RunE8() (*Result, error) {
	rng := rand.New(rand.NewSource(42))
	universe := automata.Universe(automata.UniverseSingleton)
	sizes := []int{4, 8, 16, 32}

	var b strings.Builder
	b.WriteString("size | synth tests+probes | synth equivalence | L* membership | L* equivalence | L*(W-method) membership\n")
	match := true
	for _, size := range sizes {
		sc := GenerateScenario(rng, size, 2, 3)

		synth, err := core.New(sc.Context, sc.Component, sc.Iface, core.Options{})
		if err != nil {
			return nil, err
		}
		report, err := synth.Run()
		if err != nil {
			return nil, err
		}
		synthTests := report.Stats.TestsRun + report.Stats.ProbesRun

		model, statsPerfect, err := learning.LearnComponent(
			sc.Component, sc.Iface, universe, learning.NewPerfectOracle(sc.Legacy), 256)
		if err != nil {
			return nil, err
		}

		// The W-method equivalence oracle is exponential in the gap
		// between the assumed bound and the hypothesis size; it is only
		// feasible for small components (that is the point of E9).
		wmColumn := "infeasible (Σ^l blowup)"
		var statsW learning.Stats
		if size <= 8 {
			oracle := learning.NewComponentOracle(sc.Component, &statsW)
			wm := learning.NewWMethodOracle(oracle, sc.Legacy.NumStates())
			learner := learning.NewLearner(oracle, conformance.InputAlphabet(sc.Legacy, universe), &statsW)
			if _, err := learner.Learn(wm, 256); err != nil {
				return nil, err
			}
			wmColumn = fmt.Sprintf("%d", statsW.MembershipQueries)
		}

		fmt.Fprintf(&b, "%4d | %18d | %17d | %13d | %14d | %23s\n",
			size, synthTests, 0, statsPerfect.MembershipQueries,
			statsPerfect.EquivalenceQueries, wmColumn)

		// Shapes: the synthesis needs no equivalence queries at all; L*
		// needs at least one; and for larger components the context-guided
		// tests undercut even perfect-oracle L* membership queries.
		if statsPerfect.EquivalenceQueries < 1 {
			match = false
		}
		if size >= 16 && synthTests >= statsPerfect.MembershipQueries {
			match = false
		}
		if size <= 8 && statsW.MembershipQueries < statsPerfect.MembershipQueries {
			match = false
		}
		_ = model
	}
	return &Result{
		ID:            "E8",
		Title:         "L* baseline comparison",
		PaperArtifact: "§6: no equivalence oracle needed; only context-relevant behavior learned",
		Expectation:   "synthesis: 0 equivalence queries, fewer tests than L* membership queries on larger components; W-method oracle multiplies L*'s cost",
		Measured:      "see table",
		Match:         match,
		Details:       b.String(),
	}, nil
}

// RunE9 measures the Vasilevskii/Chow suite growth (§6): exponential in
// the gap between the assumed implementation bound and the hypothesis
// size.
func RunE9() (*Result, error) {
	// The rear-role *protocol* automaton is nondeterministic (a role may
	// idle or act); conformance testing needs a function-deterministic
	// machine, so the hypothesis is the correct controller's explored
	// behavior.
	universe := automata.Universe(automata.UniverseSingleton)
	hyp := core.ExploreComponent(&railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName), universe, nil, 64)
	alphabet := conformance.InputAlphabet(hyp, universe)

	var b strings.Builder
	b.WriteString("assumed bound l | suite words | total symbols | growth vs previous\n")
	var prev int
	match := true
	n := hyp.NumStates()
	for gap := 0; gap <= 3; gap++ {
		bound := n + gap
		suite, err := conformance.Suite(hyp, alphabet, bound)
		if err != nil {
			return nil, err
		}
		c := conformance.Cost(suite)
		growth := 0.0
		if prev > 0 {
			growth = float64(c.TotalSymbols) / float64(prev)
		}
		fmt.Fprintf(&b, "%15d | %11d | %13d | %.1fx\n", bound, c.Words, c.TotalSymbols, growth)
		if prev > 0 {
			// Exponential shape: each extra state multiplies the suite by
			// roughly the alphabet size.
			if growth < 2 {
				match = false
			}
		}
		prev = c.TotalSymbols
	}
	fmt.Fprintf(&b, "\nalphabet size |Σ| = %d; Vasilevskii bound O(k²·l·|Σ|^(l−k+1))\n", len(alphabet))
	return &Result{
		ID:            "E9",
		Title:         "Vasilevskii/Chow suite growth",
		PaperArtifact: "§6: conformance-testing equivalence oracles are exponential in l−k",
		Expectation:   "suite size multiplies by ≈|Σ| per extra assumed implementation state",
		Measured:      "see table",
		Match:         match,
		Details:       b.String(),
	}, nil
}

// RunE10 fault-injects random scenarios and the RailCab trio, checking
// that the verdict always matches ground truth — the paper's "no false
// negatives, no false positives" claim.
func RunE10() (*Result, error) {
	rng := rand.New(rand.NewSource(10))
	var b strings.Builder
	total, correct := 0, 0

	check := func(name string, sc *Scenario) error {
		synth, err := core.New(sc.Context, sc.Component, sc.Iface, core.Options{})
		if err != nil {
			return err
		}
		report, err := synth.Run()
		if err != nil {
			return err
		}
		truth, err := groundTruthVerdict(sc)
		if err != nil {
			return err
		}
		total++
		ok := report.Verdict == truth
		if ok {
			correct++
		}
		fmt.Fprintf(&b, "%-22s verdict=%-9v truth=%-9v ok=%v\n", name, report.Verdict, truth, ok)
		return nil
	}

	for i := 0; i < 12; i++ {
		sc := GenerateScenario(rng, 6+rng.Intn(10), 2, 3)
		if err := check(fmt.Sprintf("random-%02d", i), sc); err != nil {
			return nil, err
		}
		mutated := MutateScenario(rng, sc)
		if err := check(fmt.Sprintf("random-%02d-mutated", i), mutated); err != nil {
			return nil, err
		}
	}

	// The RailCab trio against its ground truth.
	railcabCases := []struct {
		name string
		comp interface {
			Reset()
			Step(automata.SignalSet) (automata.SignalSet, bool)
		}
		want core.Verdict
	}{
		{"railcab-correct", &railcab.CorrectShuttle{}, core.VerdictProven},
		{"railcab-eager", &railcab.EagerShuttle{}, core.VerdictViolation},
		{"railcab-blocking", &railcab.BlockingShuttle{}, core.VerdictViolation},
	}
	for _, tc := range railcabCases {
		synth, err := railcabSynth(tc.comp)
		if err != nil {
			return nil, err
		}
		report, err := synth.Run()
		if err != nil {
			return nil, err
		}
		total++
		ok := report.Verdict == tc.want
		if ok {
			correct++
		}
		fmt.Fprintf(&b, "%-22s verdict=%-9v truth=%-9v ok=%v\n", tc.name, report.Verdict, tc.want, ok)
	}

	fmt.Fprintf(&b, "\n%d/%d verdicts match ground truth\n", correct, total)
	return &Result{
		ID:            "E10",
		Title:         "No false verdicts under fault injection",
		PaperArtifact: "§1/§4: pin-points real failures without false negatives; proofs are sound (Lemmas 5, 6)",
		Expectation:   "100% of verdicts match exhaustive ground-truth model checking",
		Measured:      fmt.Sprintf("%d/%d correct", correct, total),
		Match:         correct == total,
		Details:       b.String(),
	}, nil
}

// RunA1 is the paper-literal learning ablation: with only Definitions
// 11-12 (no function-refusal expansion) the loop can fail to make progress
// because refuted chaos hypotheses are never recorded as refusals.
func RunA1() (*Result, error) {
	synth, err := core.New(railcab.FrontRole(), &railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		core.Options{
			Property:             railcab.Constraint(),
			PaperLiteralLearning: true,
			MaxIterations:        60,
		})
	if err != nil {
		return nil, err
	}
	report, runErr := synth.Run()

	var measured string
	var match bool
	switch {
	case runErr != nil:
		// Expected: the loop stalls (the documented gap in the paper's
		// Definitions 11-12 for already-known reactions).
		measured = "loop stalls: " + runErr.Error()
		match = strings.Contains(runErr.Error(), "no progress") ||
			strings.Contains(runErr.Error(), "no verdict")
	default:
		measured = fmt.Sprintf("terminated with %v after %d iterations (blocked refusals still learned via probes)",
			report.Verdict, report.Stats.Iterations)
		match = report.Verdict == core.VerdictProven
	}
	return &Result{
		ID:            "A1",
		Title:         "Ablation: paper-literal learning",
		PaperArtifact: "Definitions 11-12",
		Expectation:   "without function-refusal expansion the loop either needs explicit blocking observations or stalls on refuted-but-unrecorded hypotheses",
		Measured:      measured,
		Match:         match,
		Details:       measured + "\n",
	}, nil
}

// RunA2 is the literal-Definition-9 ablation: with chaos transitions for
// *all* non-blocked interactions (including learned ones), s_δ stays
// reachable and the check φ ∧ ¬δ can never pass.
func RunA2() (*Result, error) {
	// Learn the full correct-shuttle model first (amended closure).
	synth, err := railcabSynth(&railcab.CorrectShuttle{})
	if err != nil {
		return nil, err
	}
	report, err := synth.Run()
	if err != nil {
		return nil, err
	}
	universe := automata.Universe(automata.UniverseSingleton)

	amended := automata.ChaoticClosure(report.Model, universe)
	sysAmended, err := automata.Compose("system", railcab.FrontRole(), amended)
	if err != nil {
		return nil, err
	}
	amendedOK := ctl.NewChecker(sysAmended).Holds(ctl.NoDeadlock())

	literal := automata.ChaoticClosureLiteral(report.Model, universe)
	sysLiteral, err := automata.Compose("system", railcab.FrontRole(), literal)
	if err != nil {
		return nil, err
	}
	literalOK := ctl.NewChecker(sysLiteral).Holds(ctl.NoDeadlock())

	details := fmt.Sprintf(
		"final learned model: %d states, %d transitions, %d refusals\n"+
			"amended closure (chaos only on unknown interactions): deadlock-free = %v\n"+
			"literal Definition 9 closure (chaos also on learned interactions): deadlock-free = %v\n"+
			"⇒ under the literal reading the success exit of §4.1 is unreachable;\n"+
			"  the paper's own worked example (Fig. 7, 'proof') requires the amended reading.\n",
		report.Model.Automaton().NumStates(), report.Model.Automaton().NumTransitions(),
		report.Model.NumBlocked(), amendedOK, literalOK)

	return &Result{
		ID:            "A2",
		Title:         "Ablation: literal Definition 9 closure",
		PaperArtifact: "Definition 9 vs. the termination claim of §4.4 and the Fig. 7 proof",
		Expectation:   "amended closure admits the proof; literal closure keeps s_δ reachable forever",
		Measured:      fmt.Sprintf("amended deadlock-free=%v, literal deadlock-free=%v", amendedOK, literalOK),
		Match:         amendedOK && !literalOK,
		Details:       details,
	}, nil
}

// RunA3 compares the singleton interaction universe against the full
// power-set universe of Definition 8 on the RailCab example.
func RunA3() (*Result, error) {
	run := func(kind automata.UniverseKind) (*core.Report, error) {
		synth, err := core.New(railcab.FrontRole(), &railcab.CorrectShuttle{},
			railcab.RearInterface(railcab.RearRoleName),
			core.Options{
				Property: railcab.Constraint(),
				Universe: automata.Universe(kind),
			})
		if err != nil {
			return nil, err
		}
		return synth.Run()
	}
	singleton, err := run(automata.UniverseSingleton)
	if err != nil {
		return nil, err
	}
	powerset, err := run(automata.UniversePowerSet)
	if err != nil {
		return nil, err
	}
	details := fmt.Sprintf(
		"universe   | verdict | iterations | peak |system| | refusals learned\n"+
			"singleton  | %-7v | %10d | %13d | %d\n"+
			"power set  | %-7v | %10d | %13d | %d\n",
		singleton.Verdict, singleton.Stats.Iterations, singleton.Stats.PeakSystemStates, singleton.Stats.RefusalsLearned,
		powerset.Verdict, powerset.Stats.Iterations, powerset.Stats.PeakSystemStates, powerset.Stats.RefusalsLearned)

	match := singleton.Verdict == core.VerdictProven &&
		powerset.Verdict == core.VerdictProven &&
		powerset.Stats.RefusalsLearned >= singleton.Stats.RefusalsLearned
	return &Result{
		ID:            "A3",
		Title:         "Ablation: power-set vs singleton interaction universe",
		PaperArtifact: "Definition 8 quantifies over ℘(I)×℘(O); RTSC steps carry at most one message per direction",
		Expectation:   "both universes prove the correct shuttle; the power set pays with a larger hypothesis space",
		Measured:      fmt.Sprintf("singleton=%v, powerset=%v", singleton.Verdict, powerset.Verdict),
		Match:         match,
		Details:       details,
	}, nil
}
