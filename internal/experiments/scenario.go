// Package experiments regenerates every figure, listing, and evaluation
// claim of the paper (see DESIGN.md, "Per-experiment index") and the
// additional quantitative sweeps that put the paper's qualitative claims
// against the L*/conformance-testing baselines.
package experiments

import (
	"fmt"
	"math/rand"

	"muml/internal/automata"
	"muml/internal/legacy"
)

// Scenario is one randomly generated integration problem: a deterministic
// legacy component (the full machine) and a context that exercises only a
// part of it (the mirror of a random sub-protocol). The paper's central
// claim is that the synthesis loop decides correctness while learning only
// the context-relevant part.
type Scenario struct {
	// Legacy is the full ground-truth behavior of the component.
	Legacy *automata.Automaton
	// Component is the black-box view of Legacy.
	Component legacy.Component
	// Iface is the component's structural interface.
	Iface legacy.Interface
	// Context drives a sub-protocol of Legacy (mirrored alphabet).
	Context *automata.Automaton
	// RelevantStates is the number of legacy states the context can reach
	// (the size of the sub-protocol).
	RelevantStates int
}

// scenarioInputs and scenarioOutputs are the closed-world alphabets of
// generated scenarios (plus the empty step).
var (
	scenarioInputs  = []automata.Signal{"x", "y"}
	scenarioOutputs = []automata.Signal{"u", "v"}
)

// GenerateScenario builds a random scenario with the given total legacy
// state count and a context walk budget (number of random protocol walks
// folded into the context).
func GenerateScenario(rng *rand.Rand, states, walks, walkLen int) *Scenario {
	full := randomLegacyMachine(rng, states)
	sub := subProtocol(rng, full, walks, walkLen)
	context := mirror(sub, "context")
	comp := legacy.MustWrapAutomaton(full)
	return &Scenario{
		Legacy:    full,
		Component: comp,
		Iface: legacy.Interface{
			Name:    full.Name(),
			Inputs:  full.Inputs(),
			Outputs: full.Outputs(),
		},
		Context:        context,
		RelevantStates: countReachable(sub),
	}
}

// randomLegacyMachine generates a function-deterministic machine where
// every state defines at least the empty-input reaction, so protocol walks
// can always continue.
func randomLegacyMachine(rng *rand.Rand, states int) *automata.Automaton {
	a := automata.New("legacy",
		automata.NewSignalSet(scenarioInputs...),
		automata.NewSignalSet(scenarioOutputs...))
	for i := 0; i < states; i++ {
		a.MustAddState(fmt.Sprintf("s%d", i))
	}
	a.MarkInitial(0)

	inputs := []automata.SignalSet{automata.EmptySet}
	for _, in := range scenarioInputs {
		inputs = append(inputs, automata.NewSignalSet(in))
	}
	outputs := []automata.SignalSet{automata.EmptySet}
	for _, out := range scenarioOutputs {
		outputs = append(outputs, automata.NewSignalSet(out))
	}

	for s := 0; s < states; s++ {
		for idx, in := range inputs {
			// The empty input always has a defined reaction; others are
			// defined with probability 2/3.
			if idx > 0 && rng.Intn(3) == 0 {
				continue
			}
			label := automata.Interaction{In: in, Out: outputs[rng.Intn(len(outputs))]}
			// Bias successors toward higher state numbers so that most of
			// the machine is reachable.
			to := automata.StateID(rng.Intn(states))
			a.MustAddTransition(automata.StateID(s), label, to)
		}
	}
	return a
}

// subProtocol selects a deadlock-free sub-automaton of the machine by
// folding random walks: each walk follows defined reactions and is
// extended until it closes a cycle within the selected transitions, so
// every selected state keeps at least one outgoing selected transition.
func subProtocol(rng *rand.Rand, full *automata.Automaton, walks, walkLen int) *automata.Automaton {
	sub := automata.New(full.Name()+"-sub", full.Inputs(), full.Outputs())
	for i := 0; i < full.NumStates(); i++ {
		sub.MustAddState(full.StateName(automata.StateID(i)))
	}
	sub.MarkInitial(full.Initial()[0])

	hasOut := make([]bool, full.NumStates())
	addEdge := func(t automata.Transition) {
		_ = sub.AddTransition(t.From, t.Label, t.To)
		hasOut[t.From] = true
	}

	for w := 0; w < walks; w++ {
		cur := full.Initial()[0]
		for step := 0; ; step++ {
			ts := full.TransitionsFrom(cur)
			t := ts[rng.Intn(len(ts))]
			addEdge(t)
			cur = t.To
			if step >= walkLen && hasOut[cur] {
				break // cycle closed: the walk's final state can continue
			}
			if step > walkLen+full.NumStates()+4 {
				// Defensive: force-close by following any defined edge
				// until a covered state appears; every state has one.
				break
			}
		}
		// Ensure the final state has an outgoing edge.
		if !hasOut[cur] {
			addEdge(full.TransitionsFrom(cur)[0])
		}
	}
	return sub.Trim(sub.Name())
}

// mirror swaps the alphabet of a protocol automaton: the context consumes
// what the component produces and vice versa.
func mirror(proto *automata.Automaton, name string) *automata.Automaton {
	m := automata.New(name, proto.Outputs(), proto.Inputs())
	for i := 0; i < proto.NumStates(); i++ {
		m.MustAddState(proto.StateName(automata.StateID(i)))
	}
	for _, q := range proto.Initial() {
		m.MarkInitial(q)
	}
	for _, t := range proto.TransitionsSnapshot() {
		label := automata.Interaction{In: t.Label.Out, Out: t.Label.In}
		_ = m.AddTransition(t.From, label, t.To)
	}
	return m
}

func countReachable(a *automata.Automaton) int {
	n := 0
	for _, ok := range a.Reachable() {
		if ok {
			n++
		}
	}
	return n
}

// MutateScenario returns a copy of the scenario whose legacy machine has
// one fault injected into the context-relevant part: a random relevant
// transition's output is changed (or the transition dropped), so the
// integration may now misbehave. Used by the fault-injection experiment.
func MutateScenario(rng *rand.Rand, s *Scenario) *Scenario {
	mutated := s.Legacy.Clone("legacy")
	// Pick a transition reachable in the composition: approximate with a
	// transition of the sub-protocol (mirrored by the context).
	var candidates []automata.Transition
	for _, t := range s.Context.TransitionsSnapshot() {
		// Context transition (In=B, Out=A) mirrors legacy (A, B).
		legacyLabel := automata.Interaction{In: t.Label.Out, Out: t.Label.In}
		from := mutated.State(s.Context.StateName(t.From))
		if from == automata.NoState {
			continue
		}
		for _, lt := range mutated.TransitionsFrom(from) {
			if lt.Label.Equal(legacyLabel) {
				candidates = append(candidates, lt)
			}
		}
	}
	if len(candidates) == 0 {
		return s
	}
	victim := candidates[rng.Intn(len(candidates))]
	rebuilt := automata.New("legacy", mutated.Inputs(), mutated.Outputs())
	for i := 0; i < mutated.NumStates(); i++ {
		rebuilt.MustAddState(mutated.StateName(automata.StateID(i)))
	}
	rebuilt.MarkInitial(mutated.Initial()[0])
	for _, t := range mutated.TransitionsSnapshot() {
		if t.From == victim.From && t.Label.Equal(victim.Label) && t.To == victim.To {
			if rng.Intn(2) == 0 {
				continue // drop the transition (component refuses now)
			}
			// Flip the output.
			newOut := automata.NewSignalSet(scenarioOutputs[rng.Intn(len(scenarioOutputs))])
			if newOut.Equal(t.Label.Out) {
				newOut = automata.EmptySet
			}
			_ = rebuilt.AddTransition(t.From, automata.Interaction{In: t.Label.In, Out: newOut}, t.To)
			continue
		}
		_ = rebuilt.AddTransition(t.From, t.Label, t.To)
	}
	return &Scenario{
		Legacy:         rebuilt,
		Component:      legacy.MustWrapAutomaton(rebuilt),
		Iface:          legacy.Interface{Name: "legacy", Inputs: rebuilt.Inputs(), Outputs: rebuilt.Outputs()},
		Context:        s.Context,
		RelevantStates: s.RelevantStates,
	}
}
