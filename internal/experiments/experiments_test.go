package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"muml/internal/automata"
	"muml/internal/conformance"
	"muml/internal/core"
	"muml/internal/legacy"
)

// TestFastExperimentsMatch runs every experiment that completes quickly
// and requires each to match its expected shape. The slower sweeps
// (E7/E8/E10/A1/A3) are covered by TestSweepExperimentsMatch below, which
// honors -short.
func TestFastExperimentsMatch(t *testing.T) {
	fast := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E9", "E11", "E12", "E13", "E14", "A2"}
	for _, id := range fast {
		t.Run(id, func(t *testing.T) {
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Match {
				t.Fatalf("experiment %s mismatch: %s\n%s", id, res.Measured, res.Details)
			}
		})
	}
}

func TestSweepExperimentsMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiments skipped in -short mode")
	}
	for _, id := range []string{"E7", "E8", "E10", "A1", "A3", "A4"} {
		t.Run(id, func(t *testing.T) {
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Match {
				t.Fatalf("experiment %s mismatch: %s\n%s", id, res.Measured, res.Details)
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E999"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestRenderReport(t *testing.T) {
	results := []*Result{
		{ID: "E1", Title: "t", PaperArtifact: "Fig|1", Expectation: "e", Measured: "m", Match: true, Details: "d"},
		{ID: "E2", Title: "t2", Match: false},
	}
	text := RenderReport(results)
	for _, want := range []string{"# EXPERIMENTS", "| E1 |", "✅", "❌", "Fig\\|1", "## E1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestGenerateScenarioWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		sc := GenerateScenario(rng, 4+rng.Intn(12), 2, 3)
		if err := sc.Legacy.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := sc.Context.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := conformance.ValidateMachine(sc.Legacy); err != nil {
			t.Fatal(err)
		}
		// Composability: disjoint alphabets in both directions.
		if !sc.Context.Inputs().Disjoint(sc.Legacy.Inputs()) ||
			!sc.Context.Outputs().Disjoint(sc.Legacy.Outputs()) {
			t.Fatal("scenario context/legacy not composable")
		}
		if sc.RelevantStates < 1 || sc.RelevantStates > sc.Legacy.NumStates() {
			t.Fatalf("relevant states = %d of %d", sc.RelevantStates, sc.Legacy.NumStates())
		}
		// The mirror context drives a sub-protocol: the unmutated scenario
		// must be provably correct (deadlock-free lock-step).
		sys, err := automata.Compose("truth", sc.Context, sc.Legacy)
		if err != nil {
			t.Fatal(err)
		}
		if _, dead := sys.DeadlockReachable(); dead {
			t.Fatalf("iteration %d: unmutated scenario has a deadlock", i)
		}
	}
}

func TestMutateScenarioChangesRelevantPart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	changed := 0
	for i := 0; i < 20; i++ {
		sc := GenerateScenario(rng, 8, 2, 3)
		mut := MutateScenario(rng, sc)
		eq, _, err := conformance.Equivalent(sc.Legacy, mut.Legacy,
			conformance.InputAlphabet(sc.Legacy, automata.Universe(automata.UniverseSingleton)))
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("mutation never changed behavior")
	}
}

func TestScenarioComponentMatchesLegacyAutomaton(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sc := GenerateScenario(rng, 6, 2, 3)
	truth := core.ExploreComponent(sc.Component, sc.Iface,
		automata.Universe(automata.UniverseSingleton), nil, 64)
	// The component wraps the legacy automaton, so exploring it must
	// reproduce the reachable part exactly.
	alphabet := conformance.InputAlphabet(sc.Legacy, automata.Universe(automata.UniverseSingleton))
	eq, w, err := conformance.Equivalent(truth, sc.Legacy, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("explored behavior differs on %v", w)
	}
	var _ legacy.Component = sc.Component
}
