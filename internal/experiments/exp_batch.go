package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"muml/internal/core"
	"muml/internal/railcab"
)

// RunA4 evaluates the paper's §7 optimization idea: deriving several
// counterexamples per verification round ("the interplay between the
// formal verification and the test could be improved when a number of
// counterexamples instead [of] only a single one could be derived from the
// model checker"). Batching must never change verdicts and should reduce
// the number of verification rounds.
func RunA4() (*Result, error) {
	var b strings.Builder
	b.WriteString("case | batch=1 iterations | batch=4 iterations | verdicts equal\n")

	type caseRun struct {
		name  string
		runIt func(batch int) (*core.Report, error)
	}
	rng := rand.New(rand.NewSource(4))
	var cases []caseRun
	cases = append(cases, caseRun{
		name: "railcab correct",
		runIt: func(batch int) (*core.Report, error) {
			synth, err := core.New(railcab.FrontRole(), &railcab.CorrectShuttle{},
				railcab.RearInterface(railcab.RearRoleName),
				core.Options{Property: railcab.Constraint(), CounterexampleBatch: batch})
			if err != nil {
				return nil, err
			}
			return synth.Run()
		},
	})
	for i := 0; i < 4; i++ {
		sc := GenerateScenario(rng, 10+4*i, 2, 3)
		cases = append(cases, caseRun{
			name: fmt.Sprintf("random scenario %d (%d states)", i, sc.Legacy.NumStates()),
			runIt: func(batch int) (*core.Report, error) {
				synth, err := core.New(sc.Context, sc.Component, sc.Iface,
					core.Options{CounterexampleBatch: batch})
				if err != nil {
					return nil, err
				}
				return synth.Run()
			},
		})
	}

	match := true
	totalSingle, totalBatch := 0, 0
	for _, tc := range cases {
		single, err := tc.runIt(1)
		if err != nil {
			return nil, err
		}
		batched, err := tc.runIt(4)
		if err != nil {
			return nil, err
		}
		same := single.Verdict == batched.Verdict && single.Kind == batched.Kind
		if !same || batched.Stats.Iterations > single.Stats.Iterations {
			match = false
		}
		totalSingle += single.Stats.Iterations
		totalBatch += batched.Stats.Iterations
		fmt.Fprintf(&b, "%-28s | %18d | %18d | %v\n",
			tc.name, single.Stats.Iterations, batched.Stats.Iterations, same)
	}
	fmt.Fprintf(&b, "\ntotal verification rounds: %d (single) vs %d (batch=4)\n", totalSingle, totalBatch)
	if totalBatch >= totalSingle {
		match = false
	}
	return &Result{
		ID:            "A4",
		Title:         "§7 optimization: multiple counterexamples per round",
		PaperArtifact: "§7 conclusion (future work)",
		Expectation:   "identical verdicts with strictly fewer verification rounds in total",
		Measured:      fmt.Sprintf("%d vs %d total rounds, verdicts preserved: %v", totalSingle, totalBatch, match),
		Match:         match,
		Details:       b.String(),
	}, nil
}
