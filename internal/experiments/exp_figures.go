package experiments

import (
	"fmt"
	"strings"

	"muml/internal/automata"
	"muml/internal/core"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/railcab"
	"muml/internal/replay"
	"muml/internal/trace"
)

func railcabSynth(comp legacy.Component) (*core.Synthesizer, error) {
	return core.New(railcab.FrontRole(), comp,
		railcab.RearInterface(railcab.RearRoleName),
		core.Options{Property: railcab.Constraint()})
}

// RunE1 reproduces Figs. 4(a) and 4(b): the trivial initial automaton
// holding only the known initial state, and its chaotic closure.
func RunE1() (*Result, error) {
	comp := &railcab.CorrectShuttle{}
	iface := railcab.RearInterface(railcab.RearRoleName)
	init := legacy.InitialStateName(comp)
	a := automata.New(iface.Name, iface.Inputs, iface.Outputs)
	id := a.MustAddState(init)
	a.MarkInitial(id)
	model := automata.NewIncomplete(a)

	universe := automata.Universe(automata.UniverseSingleton)
	closure := automata.ChaoticClosure(model, universe)
	labels := len(universe.Enumerate(iface.Inputs, iface.Outputs))

	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4(a) — trivial initial automaton M_l⁰:\n%s\n", trace.RenderModel(model))
	fmt.Fprintf(&b, "Fig. 4(b) — chaotic closure chaos(M_l⁰): %d states, %d transitions\n",
		closure.NumStates(), closure.NumTransitions())
	fmt.Fprintf(&b, "states: %s·0, %s·1, %s, %s\n", init, init, automata.ChaosAllState, automata.ChaosDeltaState)

	// Shape: 1 learned state; closure doubles it and adds the two chaotic
	// states; the open copy reaches chaos under every universe label; the
	// closed copy deadlocks; both copies are initial.
	match := a.NumStates() == 1 &&
		closure.NumStates() == 4 &&
		len(closure.Initial()) == 2 &&
		closure.IsDeadlock(closure.State(automata.ChaosDeltaState)) &&
		len(closure.TransitionsFrom(closure.State(init+automata.ChaosOpenSuffix))) == 2*labels &&
		closure.IsDeadlock(closure.State(init+automata.ChaosClosedSuffix))

	return &Result{
		ID:            "E1",
		Title:         "Initial behavior synthesis",
		PaperArtifact: "Figs. 4(a), 4(b)",
		Expectation:   "initial model = known initial state only; closure doubles states, adds s_all/s_delta, open copy reaches chaos on every interaction",
		Measured: fmt.Sprintf("model: 1 state; closure: %d states, %d transitions, %d initial",
			closure.NumStates(), closure.NumTransitions(), len(closure.Initial())),
		Match:   match,
		Details: b.String(),
	}, nil
}

// RunE2 reproduces Fig. 5: the known context behavior (the front role).
func RunE2() (*Result, error) {
	front := railcab.FrontRole()
	wantStates := []string{"noConvoy::default", "noConvoy::answer", "convoy::cruise", "convoy::break"}
	match := front.NumStates() == len(wantStates)
	for _, s := range wantStates {
		if front.State(s) == automata.NoState {
			match = false
		}
	}
	// Decision points are nondeterministic: answer offers both reject and
	// start, break offers both reject and accept.
	answer := front.State("noConvoy::answer")
	match = match && len(front.TransitionsFrom(answer)) == 2

	return &Result{
		ID:            "E2",
		Title:         "Context automaton",
		PaperArtifact: "Fig. 5",
		Expectation:   "front role with noConvoy/answer/convoy/break and nondeterministic accept-or-reject decisions",
		Measured: fmt.Sprintf("%d states, %d transitions; answer offers %d choices",
			front.NumStates(), front.NumTransitions(), len(front.TransitionsFrom(answer))),
		Match:   match,
		Details: front.Dot(),
	}, nil
}

// RunE3 reproduces Listing 1.1: the counterexample of the first
// verification round against the initial chaotic closure.
func RunE3() (*Result, error) {
	comp := &railcab.CorrectShuttle{}
	iface := railcab.RearInterface(railcab.RearRoleName)
	init := legacy.InitialStateName(comp)
	a := automata.New(iface.Name, iface.Inputs, iface.Outputs)
	id := a.MustAddState(init, core.QualifiedLabeler(iface.Name)(init)...)
	a.MarkInitial(id)
	model := automata.NewIncomplete(a)

	closure := automata.ChaoticClosure(model, automata.Universe(automata.UniverseSingleton))
	sys, err := automata.Compose("system", railcab.FrontRole(), closure)
	if err != nil {
		return nil, err
	}
	checker := ctl.NewChecker(sys)
	prop := checker.Check(ctl.WeakenForChaos(railcab.Constraint()))
	dead := checker.Check(ctl.NoDeadlock())

	var b strings.Builder
	fmt.Fprintf(&b, "weakened constraint holds: %v (chaos cannot violate weakened literals)\n", prop.Holds)
	fmt.Fprintf(&b, "deadlock freedom holds: %v\n\n", dead.Holds)
	if dead.Counterexample != nil {
		fmt.Fprintf(&b, "Listing 1.1 analogue — first counterexample (shortest, BFS):\n%s",
			trace.RenderCounterexample(sys, dead.Counterexample))
	}
	b.WriteString("\nNote: the paper's checker returned a longer deadlock run ending in\n" +
		"s_delta after breakConvoyProposal; with shortest-counterexample search the\n" +
		"first deadlock hypothesis is the closed initial copy refusing everything.\n" +
		"Both are unconfirmed hypotheses that drive the same learning loop.\n")

	match := prop.Holds && !dead.Holds && dead.Counterexample != nil && dead.EndsInDeadlock
	return &Result{
		ID:            "E3",
		Title:         "Initial counterexample",
		PaperArtifact: "Listing 1.1",
		Expectation:   "first check fails with a deadlock counterexample into the chaotic closure; constraint itself not yet violated",
		Measured: fmt.Sprintf("constraint holds=%v, deadlock-free=%v, counterexample ends in deadlock=%v",
			prop.Holds, dead.Holds, dead.EndsInDeadlock),
		Match:   match,
		Details: b.String(),
	}, nil
}

// RunE4 reproduces Listings 1.2 and 1.3: minimal recording vs enriched
// deterministic replay, on the blocking shuttle.
func RunE4() (*Result, error) {
	s, err := railcabSynth(&railcab.BlockingShuttle{})
	if err != nil {
		return nil, err
	}
	report, err := s.Run()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	var minimalOnlyMessages, replayHasStates bool
	for _, it := range report.Iterations {
		if it.Recording == nil || it.ReplayTrace == nil || len(it.Recording.Minimal.Events) == 0 {
			continue
		}
		minimalOnlyMessages = true
		for _, e := range it.Recording.Minimal.Events {
			if e.Kind != replay.KindMessage {
				minimalOnlyMessages = false
			}
		}
		replayText := it.ReplayTrace.Render()
		replayHasStates = strings.Contains(replayText, "[CurrentState]") &&
			strings.Contains(replayText, "[Timing]")
		fmt.Fprintf(&b, "Listing 1.2 analogue — minimal events for deterministic replay (iteration %d):\n%s\n",
			it.Index, it.Recording.Minimal.Render())
		fmt.Fprintf(&b, "Listing 1.3 analogue — replay with full instrumentation:\n%s\n", replayText)
		break
	}
	match := minimalOnlyMessages && replayHasStates &&
		report.Verdict == core.VerdictViolation && report.Kind == core.ViolationDeadlock

	return &Result{
		ID:            "E4",
		Title:         "Record/replay monitoring",
		PaperArtifact: "Listings 1.2, 1.3",
		Expectation:   "record phase captures only messages+periods; replay adds CurrentState and Timing probes; blocking legacy ends in a confirmed deadlock",
		Measured: fmt.Sprintf("minimal-only=%v, replay-enriched=%v, verdict=%v/%v",
			minimalOnlyMessages, replayHasStates, report.Verdict, report.Kind),
		Match:   match,
		Details: b.String(),
	}, nil
}

// RunE5 reproduces Fig. 6 and Listing 1.4: the eager shuttle's conflict is
// found inside learned behavior, without a confirming test.
func RunE5() (*Result, error) {
	s, err := railcabSynth(&railcab.EagerShuttle{})
	if err != nil {
		return nil, err
	}
	report, err := s.Run()
	if err != nil {
		return nil, err
	}
	last := report.Iterations[len(report.Iterations)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 analogue — synthesized behavior in conflict with the environment:\n%s\n",
		trace.RenderModel(report.Model))
	fmt.Fprintf(&b, "Listing 1.4 analogue — counterexample inside synthesized behavior:\n%s\n",
		report.WitnessText)
	fmt.Fprintf(&b, "iterations: %d, tests: %d (final iteration needed none)\n",
		report.Stats.Iterations, report.Stats.TestsRun)

	match := report.Verdict == core.VerdictViolation &&
		report.Kind == core.ViolationConstraint &&
		last.Test == core.TestNotRun &&
		last.CexInLearnedPart &&
		report.Stats.Iterations == 2

	return &Result{
		ID:            "E5",
		Title:         "Fast conflict detection",
		PaperArtifact: "Fig. 6, Listing 1.4",
		Expectation:   "violation lies entirely in learned behavior ⇒ real conflict proven without further testing, in the second round",
		Measured: fmt.Sprintf("verdict=%v/%v in %d iterations, final test=%v, in-learned-part=%v",
			report.Verdict, report.Kind, report.Stats.Iterations, last.Test, last.CexInLearnedPart),
		Match:   match,
		Details: b.String(),
	}, nil
}

// RunE6 reproduces Fig. 7 and Listing 1.5: the correct shuttle is proven
// correct after a few learning rounds, without learning irrelevant
// behavior.
func RunE6() (*Result, error) {
	s, err := railcabSynth(&railcab.CorrectShuttle{})
	if err != nil {
		return nil, err
	}
	report, err := s.Run()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 analogue — correct synthesized behavior w.r.t. context:\n%s\n",
		trace.RenderModel(report.Model))
	for _, it := range report.Iterations {
		if it.ReplayTrace != nil && len(it.ReplayTrace.Events) > 3 {
			fmt.Fprintf(&b, "Listing 1.5 analogue — monitoring of a successful learning step (iteration %d):\n%s\n",
				it.Index, it.ReplayTrace.Render())
			break
		}
	}
	fmt.Fprintf(&b, "stats: %+v\n", report.Stats)

	// Shape: proven; exactly the 4 protocol states learned; the
	// context-irrelevant idle transition of the wait state NOT learned.
	a := report.Model.Automaton()
	waitIdleLearned := false
	if wait := a.State("noConvoy::wait"); wait != automata.NoState {
		for _, tr := range a.TransitionsFrom(wait) {
			if tr.Label.In.IsEmpty() && tr.Label.Out.IsEmpty() {
				waitIdleLearned = true
			}
		}
	}
	match := report.Verdict == core.VerdictProven &&
		a.NumStates() == 4 &&
		!waitIdleLearned

	return &Result{
		ID:            "E6",
		Title:         "Successful learning to proof",
		PaperArtifact: "Fig. 7, Listing 1.5",
		Expectation:   "verdict proven; learned model covers the 4 protocol states but not context-irrelevant behavior (wait-state idling)",
		Measured: fmt.Sprintf("verdict=%v in %d iterations; model: %d states, %d transitions, %d refusals; wait idle learned=%v",
			report.Verdict, report.Stats.Iterations, a.NumStates(), a.NumTransitions(),
			report.Model.NumBlocked(), waitIdleLearned),
		Match:   match,
		Details: b.String(),
	}, nil
}

// RunE11 reproduces the pattern-level verification of Fig. 1, including
// the QoS connector finding.
func RunE11() (*Result, error) {
	var b strings.Builder

	sync, err := railcab.Pattern().Verify()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "synchronous DistanceCoordination pattern: satisfied=%v\n", sync.Satisfied)

	delayed, err := railcab.DelayedPattern(1, false)
	if err != nil {
		return nil, err
	}
	vd, err := delayed.Verify()
	if err != nil {
		return nil, err
	}
	delayedConstraintViolated := false
	for _, f := range vd.Failures {
		if f.Description == "pattern constraint" {
			delayedConstraintViolated = true
			fmt.Fprintf(&b, "\ndelayed pattern constraint violated (break-convoy delivery window):\n%s\n",
				f.Result.Explanation)
			if f.Result.Counterexample != nil {
				b.WriteString(trace.RenderCounterexample(vd.System, f.Result.Counterexample))
			}
		}
	}

	entry, err := railcab.DelayedEntryPattern(1)
	if err != nil {
		return nil, err
	}
	ve, err := entry.Verify()
	if err != nil {
		return nil, err
	}
	entryConstraintOK := true
	for _, f := range ve.Failures {
		if f.Description == "pattern constraint" {
			entryConstraintOK = false
		}
	}
	fmt.Fprintf(&b, "\nentry-phase pattern with delay-1 connector: constraint holds=%v\n", entryConstraintOK)

	match := sync.Satisfied && delayedConstraintViolated && entryConstraintOK
	return &Result{
		ID:            "E11",
		Title:         "Pattern verification incl. QoS connector",
		PaperArtifact: "Fig. 1 (pattern + constraint + role invariants), §2.2 (connector QoS)",
		Expectation:   "synchronous pattern verifies; explicit delay exposes the transient break-convoy mode mismatch; entry phase is delay-safe",
		Measured: fmt.Sprintf("sync=%v, delayed-break-violation=%v, delayed-entry-safe=%v",
			sync.Satisfied, delayedConstraintViolated, entryConstraintOK),
		Match:   match,
		Details: b.String(),
	}, nil
}

// RunE12 reproduces the physical safety argument: collision iff the mode
// combination forbidden by the pattern constraint.
func RunE12() (*Result, error) {
	rows := railcab.ModeTable(railcab.DefaultDynamics())
	var b strings.Builder
	match := true
	for _, row := range rows {
		fmt.Fprintf(&b, "%s\n", row)
		if row.Result.Collision != row.Forbidden {
			match = false
		}
	}
	return &Result{
		ID:            "E12",
		Title:         "Convoy kinematics vs. the constraint",
		PaperArtifact: "Application Example (rear-end collision argument)",
		Expectation:   "emergency braking collides exactly for rear=convoy ∧ front=noConvoy",
		Measured:      fmt.Sprintf("%d mode combinations simulated; collision ⇔ forbidden: %v", len(rows), match),
		Match:         match,
		Details:       b.String(),
	}, nil
}
