package replay

import (
	"fmt"

	"muml/internal/automata"
	"muml/internal/legacy"
)

// Nondeterministic replay (DESIGN.md §13). The deterministic Replay treats
// any divergence from the recording as a fatal falsification of Section
// 4.3's determinism assumption. For real black boxes that duplicate, race,
// and drop, divergence is expected: ReplayNondet follows the component's
// *actual* behavior, reports where it left the recording, and classifies
// each divergence against the learned fragment — divergent-but-allowed
// observations are merge candidates for LearnNondet, and only observations
// the fragment explicitly refutes are escapes.

// Divergence is one point where a nondeterministic re-execution departed
// from the recording.
type Divergence struct {
	Period int    // 0-based period index
	State  string // component state before the period (replay instrumentation)
	Input  automata.SignalSet
	// Recorded/Observed are the outputs of the recording and of this
	// re-execution. When one side refused the input, its Refused flag is
	// set and the output is empty.
	Recorded        automata.SignalSet
	Observed        automata.SignalSet
	RecordedRefused bool
	ObservedRefused bool
	// Allowed reports whether the observation is consistent with the
	// learned fragment (a merge candidate). Only a divergence the fragment
	// explicitly blocks is an escape.
	Allowed bool
}

func (d Divergence) String() string {
	obs := d.Observed.String()
	if d.ObservedRefused {
		obs = "refused"
	}
	rec := d.Recorded.String()
	if d.RecordedRefused {
		rec = "refused"
	}
	return fmt.Sprintf("period %d at %q under %v: observed %s, recorded %s",
		d.Period+1, d.State, d.Input, obs, rec)
}

// ReplayNondet re-executes the recorded input plan with full
// instrumentation, following the component's actual behavior instead of
// failing on divergence. Periods in which the component produces no output
// render as explicit [Quiescence] events — the δ observation. The observed
// run reflects what actually happened (including a final refusal as a
// blocked interaction), so it can be merged with LearnNondet. fragment may
// be nil, in which case every divergence is classified Allowed.
//
// The re-execution stops early only if the component refuses an input; the
// refusal is itself reported as a divergence when the recording accepted
// that period.
func ReplayNondet(comp legacy.Component, rec Recording, fragment *automata.Incomplete) (Trace, automata.ObservedRun, []Divergence, error) {
	if pa, ok := comp.(ProbeAware); ok {
		pa.SetHeavyProbes(true)
		defer pa.SetHeavyProbes(false)
	}
	obsNondetReplays.Add(1)
	obsResets.Add(1)
	comp.Reset()
	var trace Trace
	var divs []Divergence
	run := automata.ObservedRun{Initial: stateName(comp)}

	allowed := func(state string, x automata.Interaction) bool {
		return fragment == nil || fragment.AllowsObservation(state, x)
	}

	for period, in := range rec.Inputs {
		before := stateName(comp)
		trace.Events = append(trace.Events, Event{Kind: KindCurrentState, Name: before})
		recRefused := !rec.Completed() && period == rec.BlockedAt
		out, ok := comp.Step(in)
		if !ok {
			if !recRefused {
				obsDivergences.Add(1)
				divs = append(divs, Divergence{
					Period: period, State: before, Input: in,
					Recorded:        rec.Outputs[period],
					ObservedRefused: true,
					Allowed:         true, // refusals refute nothing; LearnNondet audits them
				})
			}
			blocked := automata.Interaction{In: in}
			run.Blocked = &blocked
			return trace, run, divs, nil
		}
		if recRefused {
			obsDivergences.Add(1)
			divs = append(divs, Divergence{
				Period: period, State: before, Input: in,
				Observed:        out,
				RecordedRefused: true,
				Allowed:         allowed(before, automata.Interaction{In: in, Out: out}),
			})
		} else if !out.Equal(rec.Outputs[period]) {
			obsDivergences.Add(1)
			divs = append(divs, Divergence{
				Period: period, State: before, Input: in,
				Recorded: rec.Outputs[period],
				Observed: out,
				Allowed:  allowed(before, automata.Interaction{In: in, Out: out}),
			})
		}
		appendMessageEvents(&trace, rec.Iface, in, out, period+1)
		if out.IsEmpty() {
			obsQuiescences.Add(1)
			trace.Events = append(trace.Events, Event{Kind: KindQuiescence, Count: period + 1})
		}
		trace.Events = append(trace.Events, Event{Kind: KindTiming, Count: period + 1})
		run.Steps = append(run.Steps, automata.ObservedStep{
			Label: automata.Interaction{In: in, Out: out},
			To:    stateName(comp),
		})
	}
	trace.Events = append(trace.Events, Event{Kind: KindCurrentState, Name: stateName(comp)})
	return trace, run, divs, nil
}

// ProbeNondet asks "what can the component do under in at wantState?" for
// a component whose re-executions need not land where the recording did.
// It re-executes the recorded input plan up to tries times, following
// actual behavior; whenever the prefix ends in wantState it performs the
// probe step and returns. Every attempt's observed prefix run is returned
// (probe step or refusal included on the successful attempt) so the caller
// can merge the free observations. reached is false if no attempt ended in
// wantState — under a fair component that means the recording's landing
// state was not revisited within the try budget.
func ProbeNondet(comp legacy.Component, rec Recording, in automata.SignalSet, wantState string, tries int) (ProbeResult, []automata.ObservedRun, bool, error) {
	if !rec.Completed() {
		return ProbeResult{}, nil, false, fmt.Errorf("replay: cannot probe past a blocked recording")
	}
	if tries < 1 {
		tries = 1
	}
	if pa, ok := comp.(ProbeAware); ok {
		pa.SetHeavyProbes(true)
		defer pa.SetHeavyProbes(false)
	}
	var runs []automata.ObservedRun
	for try := 0; try < tries; try++ {
		obsNondetProbes.Add(1)
		obsResets.Add(1)
		comp.Reset()
		run := automata.ObservedRun{Initial: stateName(comp)}
		blocked := false
		for _, recIn := range rec.Inputs {
			out, ok := comp.Step(recIn)
			if !ok {
				b := automata.Interaction{In: recIn}
				run.Blocked = &b
				blocked = true
				break
			}
			run.Steps = append(run.Steps, automata.ObservedStep{
				Label: automata.Interaction{In: recIn, Out: out},
				To:    stateName(comp),
			})
		}
		if blocked || stateName(comp) != wantState {
			runs = append(runs, run)
			continue
		}
		out, ok := comp.Step(in)
		if ok {
			obsProbesAccepted.Add(1)
			run.Steps = append(run.Steps, automata.ObservedStep{
				Label: automata.Interaction{In: in, Out: out},
				To:    stateName(comp),
			})
		} else {
			obsProbesRefused.Add(1)
			b := automata.Interaction{In: in}
			run.Blocked = &b
		}
		runs = append(runs, run)
		return ProbeResult{
			State:     wantState,
			Input:     in,
			Output:    out,
			Accepted:  ok,
			Quiescent: !ok && in.IsEmpty(),
			After:     stateName(comp),
		}, runs, true, nil
	}
	return ProbeResult{}, runs, false, nil
}
