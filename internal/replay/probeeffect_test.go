package replay

import (
	"strings"
	"testing"

	"muml/internal/automata"
	"muml/internal/legacy"
)

// jitterComponent simulates a probe-sensitive target: with heavyweight
// instrumentation enabled during a *live* run, its operation takes longer
// and it misses the deadline for answering in the same period — the probe
// effect of Section 5. Replayed executions are reproduced from recorded
// data, so there the probes are harmless (modeled by the component keeping
// its recorded pace: the harness only enables heavy probes during replay,
// which this component distinguishes via the replay flag).
type jitterComponent struct {
	state       string
	heavyProbes bool
}

var (
	_ legacy.Component    = (*jitterComponent)(nil)
	_ legacy.Introspector = (*jitterComponent)(nil)
	_ ProbeAware          = (*jitterComponent)(nil)
)

func (c *jitterComponent) Reset()                 { c.state = "idle" }
func (c *jitterComponent) StateName() string      { return c.state }
func (c *jitterComponent) SetHeavyProbes(on bool) { c.heavyProbes = on }

// replaying reports whether the component is being driven from recorded
// data. In the real platform this distinction is physical (re-execution
// from a log cannot be disturbed); here the two-phase harness guarantees
// heavy probes are only ever enabled together with replay.
func (c *jitterComponent) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	if c.state == "" {
		c.state = "idle"
	}
	switch c.state {
	case "idle":
		if in.Contains("ping") {
			// Under live heavy instrumentation the reply misses its
			// period: the component needs an extra step (probe effect).
			if c.heavyProbes && !replayGuard {
				c.state = "lagging"
				return automata.EmptySet, true
			}
			return automata.NewSignalSet("pong"), true
		}
		if in.IsEmpty() {
			return automata.EmptySet, true
		}
	case "lagging":
		if in.IsEmpty() {
			c.state = "idle"
			return automata.NewSignalSet("pong"), true
		}
	}
	return automata.EmptySet, false
}

// replayGuard is toggled by the tests to mark the deterministic-replay
// phase, in which re-execution is undisturbed by construction.
var replayGuard bool

func jitterIface() legacy.Interface {
	return legacy.Interface{
		Name:    "jitter",
		Inputs:  automata.NewSignalSet("ping"),
		Outputs: automata.NewSignalSet("pong"),
	}
}

func TestProbeEffectDisturbsNaiveLiveMonitoring(t *testing.T) {
	comp := &jitterComponent{}
	inputs := []automata.SignalSet{automata.NewSignalSet("ping")}

	// Undisturbed behavior: pong in the same period.
	rec := Record(comp, jitterIface(), inputs)
	if !rec.Completed() || !rec.Outputs[0].Contains("pong") {
		t.Fatalf("clean run = %+v", rec.Outputs)
	}

	// Naive live monitoring with heavy probes: the reply slips.
	naive := NaiveLiveMonitor(comp, jitterIface(), inputs)
	naiveText := naive.Render()
	if strings.Contains(naiveText, `name="pong"`) {
		t.Fatalf("probe effect not visible in naive live monitoring:\n%s", naiveText)
	}
}

func TestTwoPhaseProtocolAvoidsProbeEffect(t *testing.T) {
	comp := &jitterComponent{}
	inputs := []automata.SignalSet{automata.NewSignalSet("ping")}
	rec := Record(comp, jitterIface(), inputs)

	// Replay is a reproduction of the recorded execution: mark the replay
	// phase (physical re-execution cannot be disturbed) and verify the
	// enriched trace matches the clean recording.
	replayGuard = true
	defer func() { replayGuard = false }()
	trace, run, err := Replay(comp, rec)
	if err != nil {
		t.Fatalf("replay diverged despite two-phase protocol: %v", err)
	}
	text := trace.Render()
	if !strings.Contains(text, `name="pong"`) || !strings.Contains(text, "[CurrentState]") {
		t.Fatalf("replay trace incomplete:\n%s", text)
	}
	if len(run.Steps) != 1 || !run.Steps[0].Label.Out.Contains("pong") {
		t.Fatalf("observed run = %+v", run.Steps)
	}
}
