package replay

import (
	"strings"
	"testing"

	"muml/internal/automata"
	"muml/internal/legacy"
	"muml/internal/railcab"
)

func rearIface() legacy.Interface {
	return railcab.RearInterface("rear")
}

func planInputs(signals ...string) []automata.SignalSet {
	out := make([]automata.SignalSet, len(signals))
	for i, s := range signals {
		if s == "" {
			out[i] = automata.EmptySet
			continue
		}
		out[i] = automata.NewSignalSet(automata.Signal(s))
	}
	return out
}

func TestRecordCapturesMinimalEvents(t *testing.T) {
	comp := &railcab.CorrectShuttle{}
	rec := Record(comp, rearIface(), planInputs("", string(railcab.ConvoyProposalRejected)))
	if !rec.Completed() {
		t.Fatalf("recording blocked at %d", rec.BlockedAt)
	}
	if len(rec.Outputs) != 2 {
		t.Fatalf("outputs = %v", rec.Outputs)
	}
	if !rec.Outputs[0].Contains(railcab.ConvoyProposal) {
		t.Fatalf("first output = %v", rec.Outputs[0])
	}
	// Minimal trace: only message events (Listing 1.2 shape).
	for _, e := range rec.Minimal.Events {
		if e.Kind != KindMessage {
			t.Fatalf("record phase captured non-message event %v", e)
		}
	}
	text := rec.Minimal.Render()
	if !strings.Contains(text, `[Message] name="convoyProposal", portName="rearRole", type="outgoing"`) {
		t.Fatalf("minimal trace:\n%s", text)
	}
	if !strings.Contains(text, `type="incoming"`) {
		t.Fatalf("missing incoming message:\n%s", text)
	}
}

func TestRecordStopsAtRefusal(t *testing.T) {
	comp := &railcab.CorrectShuttle{}
	// startConvoy in the initial state is refused.
	rec := Record(comp, rearIface(), planInputs(string(railcab.StartConvoy)))
	if rec.Completed() {
		t.Fatal("refused input not detected")
	}
	if rec.BlockedAt != 0 {
		t.Fatalf("BlockedAt = %d", rec.BlockedAt)
	}
}

func TestReplayEnrichesWithStatesAndTiming(t *testing.T) {
	comp := &railcab.CorrectShuttle{}
	rec := Record(comp, rearIface(), planInputs("", string(railcab.StartConvoy)))
	trace, run, err := Replay(comp, rec)
	if err != nil {
		t.Fatal(err)
	}
	text := trace.Render()
	for _, want := range []string{
		`[CurrentState] name="noConvoy::default"`,
		`[Message] name="convoyProposal", portName="rearRole", type="outgoing"`,
		`[Timing] count=1`,
		`[CurrentState] name="noConvoy::wait"`,
		`[Message] name="startConvoy", portName="rearRole", type="incoming"`,
		`[Timing] count=2`,
		`[CurrentState] name="convoy::cruise"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("replay trace missing %q:\n%s", want, text)
		}
	}
	// Observed run for learning.
	if run.Initial != "noConvoy::default" {
		t.Fatalf("run initial = %q", run.Initial)
	}
	if len(run.Steps) != 2 || run.Steps[1].To != "convoy::cruise" {
		t.Fatalf("run steps = %+v", run.Steps)
	}
	if run.Blocked != nil {
		t.Fatal("unexpected blocked marker")
	}
}

func TestReplayReproducesRefusal(t *testing.T) {
	comp := &railcab.CorrectShuttle{}
	rec := Record(comp, rearIface(), planInputs("", string(railcab.StartConvoy), string(railcab.StartConvoy)))
	if rec.Completed() || rec.BlockedAt != 2 {
		t.Fatalf("BlockedAt = %d", rec.BlockedAt)
	}
	_, run, err := Replay(comp, rec)
	if err != nil {
		t.Fatal(err)
	}
	if run.Blocked == nil || !run.Blocked.In.Contains(railcab.StartConvoy) {
		t.Fatalf("blocked marker = %+v", run.Blocked)
	}
	if len(run.Steps) != 2 {
		t.Fatalf("steps before refusal = %d", len(run.Steps))
	}
}

// flakyComponent violates the determinism assumption: the second run
// produces a different output.
type flakyComponent struct {
	runs  int
	steps int
}

func (f *flakyComponent) Reset() { f.runs++; f.steps = 0 }

func (f *flakyComponent) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	f.steps++
	if f.runs > 1 {
		return automata.NewSignalSet("other"), true
	}
	return automata.NewSignalSet("first"), true
}

func TestReplayDetectsNondeterminism(t *testing.T) {
	comp := &flakyComponent{}
	iface := legacy.Interface{
		Name:    "flaky",
		Outputs: automata.NewSignalSet("first", "other"),
	}
	rec := Record(comp, iface, planInputs(""))
	if _, _, err := Replay(comp, rec); err == nil {
		t.Fatal("nondeterministic component not detected by replay")
	}
}

func TestProbeRepliesAfterPrefix(t *testing.T) {
	comp := &railcab.CorrectShuttle{}
	rec := Record(comp, rearIface(), planInputs("")) // proposal sent, now waiting
	res, err := Probe(comp, rec, automata.NewSignalSet(railcab.StartConvoy))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.State != "noConvoy::wait" || res.After != "convoy::cruise" {
		t.Fatalf("probe = %+v", res)
	}
	// Refused probe keeps state.
	res2, err := Probe(comp, rec, automata.NewSignalSet(railcab.BreakConvoyAccepted))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Accepted || res2.After != res2.State {
		t.Fatalf("refused probe = %+v", res2)
	}
}

func TestProbeRejectsBlockedRecording(t *testing.T) {
	comp := &railcab.CorrectShuttle{}
	rec := Record(comp, rearIface(), planInputs(string(railcab.StartConvoy)))
	if _, err := Probe(comp, rec, automata.EmptySet); err == nil {
		t.Fatal("probe past a blocked recording accepted")
	}
}

func TestEventRendering(t *testing.T) {
	tests := []struct {
		e    Event
		want string
	}{
		{Event{Kind: KindMessage, Name: "m", Port: "p", Dir: Outgoing},
			`[Message] name="m", portName="p", type="outgoing"`},
		{Event{Kind: KindMessage, Name: "m", Port: "p", Dir: Incoming},
			`[Message] name="m", portName="p", type="incoming"`},
		{Event{Kind: KindCurrentState, Name: "s"}, `[CurrentState] name="s"`},
		{Event{Kind: KindTiming, Count: 3}, `[Timing] count=3`},
	}
	for _, tt := range tests {
		if got := tt.e.Render(); got != tt.want {
			t.Fatalf("Render = %q, want %q", got, tt.want)
		}
	}
}

func TestTraceMessages(t *testing.T) {
	tr := Trace{Events: []Event{
		{Kind: KindCurrentState, Name: "s"},
		{Kind: KindMessage, Name: "m"},
		{Kind: KindTiming, Count: 1},
	}}
	msgs := tr.Messages()
	if len(msgs) != 1 || msgs[0].Name != "m" {
		t.Fatalf("Messages = %v", msgs)
	}
}
