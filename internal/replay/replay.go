// Package replay implements the monitoring and platform-independent
// deterministic replay of Section 5 of the paper.
//
// Testing a counterexample against the legacy component proceeds in two
// phases:
//
//  1. Record: the component executes in its (simulated) environment with
//     only the minimal probes needed for deterministic replay — the
//     incoming/outgoing messages and the period number in which they
//     occur (Listing 1.2). Keeping this set minimal avoids the probe
//     effect on resource-constrained targets.
//  2. Replay: the recorded execution is reproduced deterministically from
//     the recorded data; additional instrumentation that has no effect on
//     the execution (state and timing probes) enriches the trace with the
//     information required for behavior synthesis (Listing 1.3).
//
// The enriched trace converts into an automata.ObservedRun for the learn
// step (Definitions 11-12).
package replay

import (
	"fmt"
	"strings"

	"muml/internal/automata"
	"muml/internal/legacy"
)

// ProbeAware is implemented by components whose execution is disturbed by
// heavyweight instrumentation — the *probe effect* of Section 5 (McDowell
// & Helmbold): on resource-constrained targets, monitoring all timing,
// events, and scheduling changes operation times and thus behavior.
//
// The two-phase protocol of this package keeps live executions clean: the
// record phase runs with heavy probes disabled (only messages and period
// numbers are captured, which the paper's platform supports without
// disturbance), and the state/timing probes are only enabled during
// deterministic replay, where they cannot affect the (re-)execution.
// NaiveLiveMonitor exists to demonstrate what goes wrong otherwise.
type ProbeAware interface {
	// SetHeavyProbes enables or disables heavyweight instrumentation.
	// Implementations may behave differently (and realistically: only
	// timing-wise) while heavy probes are enabled.
	SetHeavyProbes(enabled bool)
}

// Direction of a message relative to the component.
type Direction int

// Message directions.
const (
	Incoming Direction = iota + 1
	Outgoing
)

func (d Direction) String() string {
	if d == Incoming {
		return "incoming"
	}
	return "outgoing"
}

// EventKind classifies monitored events.
type EventKind int

// Monitored event kinds, mirroring the paper's listings. KindQuiescence is
// an extension for nondeterministic components (DESIGN.md §13): a period in
// which the component produced nothing renders as an explicit δ observation
// instead of silently contributing no message events. Only ReplayNondet
// emits it; deterministic replay traces are unchanged.
const (
	KindMessage EventKind = iota + 1
	KindCurrentState
	KindTiming
	KindQuiescence
)

// Event is one monitored observation.
type Event struct {
	Kind  EventKind
	Name  string    // message name or state name
	Port  string    // port for messages
	Dir   Direction // direction for messages
	Count int       // period number for timing events
}

// Render formats the event in the paper's listing style.
func (e Event) Render() string {
	switch e.Kind {
	case KindMessage:
		return fmt.Sprintf("[Message] name=%q, portName=%q, type=%q", e.Name, e.Port, e.Dir)
	case KindCurrentState:
		return fmt.Sprintf("[CurrentState] name=%q", e.Name)
	case KindQuiescence:
		return fmt.Sprintf("[Quiescence] count=%d", e.Count)
	default:
		return fmt.Sprintf("[Timing] count=%d", e.Count)
	}
}

// Trace is a sequence of monitored events.
type Trace struct {
	Events []Event
}

// Render formats the whole trace, one event per line, as in Listings
// 1.2-1.5 of the paper.
func (t Trace) Render() string {
	var b strings.Builder
	for _, e := range t.Events {
		b.WriteString(e.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// Messages returns only the message events (the minimal deterministic-
// replay record).
func (t Trace) Messages() []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Kind == KindMessage {
			out = append(out, e)
		}
	}
	return out
}

// Recording is the outcome of the record phase: the inputs fed per period
// (the deterministic replay data) plus the minimal monitored trace.
type Recording struct {
	Iface  legacy.Interface
	Inputs []automata.SignalSet // input set per period, in order
	// Minimal holds the message-and-period events observed while
	// recording (Listing 1.2).
	Minimal Trace
	// BlockedAt is the period index at which the component refused its
	// input, or -1 if the full plan executed.
	BlockedAt int
	// Outputs holds the observed output set per executed period.
	Outputs []automata.SignalSet
}

// Completed reports whether the full input plan executed without the
// component blocking.
func (r Recording) Completed() bool { return r.BlockedAt < 0 }

// Record executes the component from its initial state over the planned
// inputs, monitoring only messages and periods. If the component refuses
// an input the recording stops there.
func Record(comp legacy.Component, iface legacy.Interface, inputs []automata.SignalSet) Recording {
	if pa, ok := comp.(ProbeAware); ok {
		pa.SetHeavyProbes(false)
	}
	obsRecords.Add(1)
	obsResets.Add(1)
	comp.Reset()
	rec := Recording{Iface: iface, BlockedAt: -1}
	for period, in := range inputs {
		out, ok := comp.Step(in)
		if !ok {
			rec.BlockedAt = period
			rec.Inputs = append(rec.Inputs, in)
			break
		}
		rec.Inputs = append(rec.Inputs, in)
		rec.Outputs = append(rec.Outputs, out)
		appendMessageEvents(&rec.Minimal, iface, in, out, period+1)
	}
	return rec
}

// Replay reproduces the recorded execution with full instrumentation:
// state probes before every period and timing probes after (Listing 1.3).
// It returns the enriched trace and the observed run for learning.
//
// Replay fails if the component's behaviour diverges from the recording,
// which would falsify the determinism assumption of Section 4.3.
func Replay(comp legacy.Component, rec Recording) (Trace, automata.ObservedRun, error) {
	// During replay the execution is reproduced from recorded data, so
	// added instrumentation has no effect on it; heavy probes are safe.
	if pa, ok := comp.(ProbeAware); ok {
		pa.SetHeavyProbes(true)
		defer pa.SetHeavyProbes(false)
	}
	obsReplays.Add(1)
	obsResets.Add(1)
	comp.Reset()
	var trace Trace
	run := automata.ObservedRun{Initial: stateName(comp)}

	steps := len(rec.Inputs)
	if !rec.Completed() {
		steps = rec.BlockedAt
	}
	for period := 0; period < steps; period++ {
		in := rec.Inputs[period]
		trace.Events = append(trace.Events, Event{Kind: KindCurrentState, Name: stateName(comp)})
		out, ok := comp.Step(in)
		if !ok {
			return trace, run, fmt.Errorf(
				"replay: period %d: component refused input %v accepted during recording (nondeterministic component)",
				period+1, in)
		}
		if !out.Equal(rec.Outputs[period]) {
			return trace, run, fmt.Errorf(
				"replay: period %d: outputs %v diverge from recorded %v (nondeterministic component)",
				period+1, out, rec.Outputs[period])
		}
		appendMessageEvents(&trace, rec.Iface, in, out, period+1)
		trace.Events = append(trace.Events, Event{Kind: KindTiming, Count: period + 1})
		run.Steps = append(run.Steps, automata.ObservedStep{
			Label: automata.Interaction{In: in, Out: out},
			To:    stateName(comp),
		})
	}
	trace.Events = append(trace.Events, Event{Kind: KindCurrentState, Name: stateName(comp)})

	if !rec.Completed() {
		// Re-establish the refusal under instrumentation.
		in := rec.Inputs[rec.BlockedAt]
		if _, ok := comp.Step(in); ok {
			return trace, run, fmt.Errorf(
				"replay: period %d: component accepted input %v refused during recording (nondeterministic component)",
				rec.BlockedAt+1, in)
		}
		blocked := automata.Interaction{In: in}
		run.Blocked = &blocked
	}
	return trace, run, nil
}

// Probe resets the component, replays the recorded execution, and then
// performs one additional step with the given input, reporting the
// component's reaction. This is how the executor asks "what would the
// component do next?" at the end of a counterexample without forking
// state: every probe is a fresh deterministic re-execution.
func Probe(comp legacy.Component, rec Recording, in automata.SignalSet) (ProbeResult, error) {
	if !rec.Completed() {
		return ProbeResult{}, fmt.Errorf("replay: cannot probe past a blocked recording")
	}
	if pa, ok := comp.(ProbeAware); ok {
		pa.SetHeavyProbes(true)
		defer pa.SetHeavyProbes(false)
	}
	obsProbes.Add(1)
	obsResets.Add(1)
	comp.Reset()
	for period, recIn := range rec.Inputs {
		out, ok := comp.Step(recIn)
		if !ok || !out.Equal(rec.Outputs[period]) {
			return ProbeResult{}, fmt.Errorf("replay: probe replay diverged at period %d", period+1)
		}
	}
	before := stateName(comp)
	out, ok := comp.Step(in)
	if ok {
		obsProbesAccepted.Add(1)
	} else {
		obsProbesRefused.Add(1)
	}
	return ProbeResult{
		State:     before,
		Input:     in,
		Output:    out,
		Accepted:  ok,
		Quiescent: !ok && in.IsEmpty(),
		After:     stateName(comp),
	}, nil
}

// ProbeResult is the component's reaction to a probe step.
type ProbeResult struct {
	State    string // state before the probe
	Input    automata.SignalSet
	Output   automata.SignalSet
	Accepted bool
	// Quiescent distinguishes the two faces of non-acceptance: probing the
	// empty input and not executing is the quiescence observation δ (the
	// state neither emits spontaneously nor steps silently), whereas not
	// executing a non-empty input is a genuine refusal. Before this flag
	// both surfaced identically as Accepted == false.
	Quiescent bool
	After     string // state after the probe (== State when refused)
}

// NaiveLiveMonitor runs the component over the inputs with heavyweight
// instrumentation enabled *during the live run* — the approach the paper
// rejects. For probe-sensitive components the returned trace can differ
// from what an undisturbed execution produces, demonstrating the probe
// effect the record/replay split avoids. For insensitive components it is
// equivalent to Record followed by Replay.
func NaiveLiveMonitor(comp legacy.Component, iface legacy.Interface, inputs []automata.SignalSet) Trace {
	if pa, ok := comp.(ProbeAware); ok {
		pa.SetHeavyProbes(true)
		defer pa.SetHeavyProbes(false)
	}
	comp.Reset()
	var trace Trace
	for period, in := range inputs {
		trace.Events = append(trace.Events, Event{Kind: KindCurrentState, Name: stateName(comp)})
		out, ok := comp.Step(in)
		if !ok {
			break
		}
		appendMessageEvents(&trace, iface, in, out, period+1)
		trace.Events = append(trace.Events, Event{Kind: KindTiming, Count: period + 1})
	}
	trace.Events = append(trace.Events, Event{Kind: KindCurrentState, Name: stateName(comp)})
	return trace
}

func appendMessageEvents(t *Trace, iface legacy.Interface, in, out automata.SignalSet, period int) {
	for _, sig := range in.Signals() {
		t.Events = append(t.Events, Event{
			Kind: KindMessage, Name: string(sig), Port: iface.PortOf(sig), Dir: Incoming, Count: period,
		})
	}
	for _, sig := range out.Signals() {
		t.Events = append(t.Events, Event{
			Kind: KindMessage, Name: string(sig), Port: iface.PortOf(sig), Dir: Outgoing, Count: period,
		})
	}
}

func stateName(comp legacy.Component) string {
	if in, ok := comp.(legacy.Introspector); ok {
		return in.StateName()
	}
	return "s0"
}
