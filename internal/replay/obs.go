package replay

import "muml/internal/obs"

// Observability hooks mirroring internal/automata: package-level nil-safe
// counters, attached once before a run. They account the black-box test
// effort the paper argues dominates on real targets — component resets
// (each record, replay, and probe re-executes from scratch) and probe
// outcomes.
var (
	obsRecords        *obs.Counter
	obsReplays        *obs.Counter
	obsProbes         *obs.Counter
	obsProbesAccepted *obs.Counter
	obsProbesRefused  *obs.Counter
	obsResets         *obs.Counter
	obsNondetReplays  *obs.Counter
	obsNondetProbes   *obs.Counter
	obsDivergences    *obs.Counter
	obsQuiescences    *obs.Counter
)

// EnableObservability registers this package's counters in the registry:
// replay.records, replay.replays, replay.probes, replay.probes_accepted,
// replay.probes_refused, replay.resets, replay.nondet_replays,
// replay.nondet_probes, replay.divergences, and replay.quiescences.
func EnableObservability(r *obs.Registry) {
	obsRecords = r.Counter("replay.records")
	obsReplays = r.Counter("replay.replays")
	obsProbes = r.Counter("replay.probes")
	obsProbesAccepted = r.Counter("replay.probes_accepted")
	obsProbesRefused = r.Counter("replay.probes_refused")
	obsResets = r.Counter("replay.resets")
	obsNondetReplays = r.Counter("replay.nondet_replays")
	obsNondetProbes = r.Counter("replay.nondet_probes")
	obsDivergences = r.Counter("replay.divergences")
	obsQuiescences = r.Counter("replay.quiescences")
}

// DisableObservability detaches all hooks (the default state).
func DisableObservability() {
	obsRecords = nil
	obsReplays = nil
	obsProbes = nil
	obsProbesAccepted = nil
	obsProbesRefused = nil
	obsResets = nil
	obsNondetReplays = nil
	obsNondetProbes = nil
	obsDivergences = nil
	obsQuiescences = nil
}
