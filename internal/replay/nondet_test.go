package replay

import (
	"strings"
	"testing"

	"muml/internal/automata"
	"muml/internal/legacy"
)

// racyComponent: at s0 input a races outputs {x} → s1 and {y} → s0; at s1
// input a is consumed silently back to s0. Input b is refused everywhere.
func racyComponent(t *testing.T) (*legacy.NondetComponent, legacy.Interface) {
	t.Helper()
	a := automata.New("racy", automata.NewSignalSet("a"), automata.NewSignalSet("x", "y"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	a.MarkInitial(s0)
	in := automata.NewSignalSet("a")
	a.MustAddTransition(s0, automata.Interaction{In: in, Out: automata.NewSignalSet("x")}, s1)
	a.MustAddTransition(s0, automata.Interaction{In: in, Out: automata.NewSignalSet("y")}, s0)
	a.MustAddTransition(s1, automata.Interaction{In: in, Out: automata.EmptySet}, s0)
	c := legacy.MustWrapNondet(a)
	return c, c.InterfaceOf()
}

func TestReplayNondetFollowsActualBehavior(t *testing.T) {
	comp, iface := racyComponent(t)
	inputs := []automata.SignalSet{automata.NewSignalSet("a"), automata.NewSignalSet("a")}
	rec := Record(comp, iface, inputs)
	if !rec.Completed() {
		t.Fatalf("recording blocked at %d", rec.BlockedAt)
	}
	// The fair scheduler took branch x/s1 on visit 0; the re-execution
	// advances the (s0, a) counter and takes y/s0, diverging at period 0.
	trace, run, divs, err := ReplayNondet(comp, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) == 0 {
		t.Fatal("expected at least one divergence from the recording")
	}
	d := divs[0]
	if d.Period != 0 || d.State != "s0" || !d.Allowed || d.ObservedRefused || d.RecordedRefused {
		t.Fatalf("divergence = %+v", d)
	}
	if !d.Observed.Equal(automata.NewSignalSet("y")) || !d.Recorded.Equal(automata.NewSignalSet("x")) {
		t.Fatalf("divergence outputs = %+v", d)
	}
	// The observed run reflects what actually ran, not the recording.
	if len(run.Steps) != 2 || run.Steps[0].To != "s0" {
		t.Fatalf("observed run = %+v", run)
	}
	// Deterministic replay keeps hard-failing on divergence. After the
	// record and the replay above, the first-occurrence cursor of (s0, a)
	// is back on the x branch, so a recording expecting y cannot match.
	recY := Recording{
		Iface:     iface,
		Inputs:    inputs[:1],
		Outputs:   []automata.SignalSet{automata.NewSignalSet("y")},
		BlockedAt: -1,
	}
	if _, _, err := Replay(comp, recY); err == nil {
		t.Fatal("deterministic Replay must still reject divergence")
	}
	_ = trace
}

func TestReplayNondetEmitsQuiescence(t *testing.T) {
	comp, iface := racyComponent(t)
	// Drive to s1 (x branch on visit 0), then a consumed silently: the
	// second period produces no output and must render as [Quiescence].
	inputs := []automata.SignalSet{automata.NewSignalSet("a"), automata.NewSignalSet("a")}
	rec := Record(comp, iface, inputs)
	// Reset fairness history so the re-execution retakes the x branch:
	// wrap a fresh component over the same automaton.
	fresh, _ := racyComponent(t)
	_, run, divs, err := ReplayNondet(fresh, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 0 {
		t.Fatalf("fresh component should reproduce the recording, got %v", divs)
	}
	trace, _, _, err := ReplayNondet(freshAt(t), rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := trace.Render()
	if !strings.Contains(text, "[Quiescence] count=2") {
		t.Fatalf("missing quiescence event:\n%s", text)
	}
	if strings.Contains(text, "[Quiescence] count=1") {
		t.Fatalf("period 1 produced output; no quiescence expected:\n%s", text)
	}
	_ = run
}

func freshAt(t *testing.T) *legacy.NondetComponent {
	t.Helper()
	c, _ := racyComponent(t)
	return c
}

func TestReplayNondetClassifiesAgainstFragment(t *testing.T) {
	comp, iface := racyComponent(t)
	inputs := []automata.SignalSet{automata.NewSignalSet("a")}
	rec := Record(comp, iface, inputs)

	frag := automata.New("learned", automata.NewSignalSet("a"), automata.NewSignalSet("x", "y"))
	s0 := frag.MustAddState("s0")
	frag.MarkInitial(s0)
	m := automata.NewIncomplete(frag)
	// The fragment refutes y at s0: the y-branch divergence is an escape.
	if err := m.Block(s0, automata.Interaction{In: automata.NewSignalSet("a"), Out: automata.NewSignalSet("y")}); err != nil {
		t.Fatal(err)
	}
	_, _, divs, err := ReplayNondet(comp, rec, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 1 || divs[0].Allowed {
		t.Fatalf("blocked observation must classify as not allowed: %+v", divs)
	}
	if s := divs[0].String(); !strings.Contains(s, "observed {y}") {
		t.Fatalf("divergence rendering: %s", s)
	}
}

func TestProbeNondetReachesRecordedState(t *testing.T) {
	comp, iface := racyComponent(t)
	inputs := []automata.SignalSet{automata.NewSignalSet("a")}
	rec := Record(comp, iface, inputs) // lands in s1 via the x branch
	// The next prefix re-execution takes the y branch (lands s0); with
	// retries the round-robin returns to the x branch and reaches s1.
	res, runs, reached, err := ProbeNondet(comp, rec, automata.NewSignalSet("a"), "s1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatalf("never reached s1 in 4 tries; runs=%v", runs)
	}
	if !res.Accepted || !res.Output.IsEmpty() || res.After != "s0" {
		t.Fatalf("probe at s1 = %+v, want silent step to s0", res)
	}
	if len(runs) < 2 {
		t.Fatalf("expected missed attempts to be reported, got %d runs", len(runs))
	}
	// Every returned run is learnable: states and labels are real.
	for _, r := range runs {
		if r.Initial != "s0" {
			t.Fatalf("run initial = %q", r.Initial)
		}
	}
}

func TestProbeNondetUnreachableState(t *testing.T) {
	comp, iface := racyComponent(t)
	rec := Record(comp, iface, nil) // empty prefix: always at s0
	_, runs, reached, err := ProbeNondet(comp, rec, automata.NewSignalSet("a"), "s1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("empty prefix cannot land in s1")
	}
	if len(runs) != 3 {
		t.Fatalf("expected 3 attempt runs, got %d", len(runs))
	}
}

// Satellite regression: a probe refusing the empty input is the quiescence
// observation δ, distinguishable from a refused real input.
func TestProbeQuiescenceVersusRefusal(t *testing.T) {
	comp, iface := racyComponent(t)
	rec := Record(comp, iface, nil)
	// s0 has no spontaneous behavior: probing ∅ observes quiescence.
	res, err := Probe(comp, rec, automata.EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || !res.Quiescent {
		t.Fatalf("empty-input probe = %+v, want refused+quiescent", res)
	}
	// b is refused at s0: a genuine refusal, not quiescence.
	res, err = Probe(comp, rec, automata.NewSignalSet("b"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Quiescent {
		t.Fatalf("refused-input probe = %+v, want refused+not-quiescent", res)
	}
}
