package memostore_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"muml/internal/automata"
	"muml/internal/memostore"
)

// senderReceiver builds the communicating pair the compose tests use, so
// the store round-trips a real composition (with provenance parts and a
// leaf decomposition) rather than a synthetic payload.
func senderReceiver(t *testing.T) (*automata.Automaton, *automata.Automaton) {
	t.Helper()
	s := automata.New("sender", automata.EmptySet, automata.NewSignalSet("msg"))
	s0 := s.MustAddState("ready")
	s1 := s.MustAddState("sent")
	s.MustAddTransition(s0, automata.Interact(nil, []automata.Signal{"msg"}), s1)
	s.MustAddTransition(s1, automata.Interaction{}, s1)
	s.MarkInitial(s0)

	r := automata.New("receiver", automata.NewSignalSet("msg"), automata.EmptySet)
	r0 := r.MustAddState("waiting")
	r1 := r.MustAddState("got")
	r.MustAddTransition(r0, automata.Interact([]automata.Signal{"msg"}, nil), r1)
	r.MustAddTransition(r1, automata.Interaction{}, r1)
	r.MarkInitial(r0)
	return s, r
}

// recordFiles returns the names of the record files in dir, for tests that
// need to corrupt or count them.
func recordFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".memo") {
			names = append(names, de.Name())
		}
	}
	return names
}

// TestStoreWarmStartRoundTrip is the restart scenario end to end: process 1
// composes through a store-backed cache and exits; process 2 (a fresh cache
// and a fresh Store over the same directory) warm-starts the identical
// composition from disk, and the result is structurally identical to a
// fresh build.
func TestStoreWarmStartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, r := senderReceiver(t)
	want := automata.MustCompose("sys", s, r)

	st1, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	memo1 := automata.NewMemoCache(nil)
	memo1.SetBackend(st1)
	if _, err := automata.ComposeCtx(context.Background(), "sys", s, r, memo1); err != nil {
		t.Fatal(err)
	}
	hits1, misses1, _ := memo1.Stats()
	if hits1 != 0 || misses1 != 1 {
		t.Fatalf("run 1 memo stats = %d hits / %d misses, want 0/1", hits1, misses1)
	}
	if _, _, _, entries, _ := st1.Stats(); entries != 1 {
		t.Fatalf("store entries after run 1 = %d, want 1", entries)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new Store indexes the directory, a new cache has no
	// memory of the composition — yet the lookup hits, served from disk.
	st2, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	memo2 := automata.NewMemoCache(nil)
	memo2.SetBackend(st2)
	got, err := automata.ComposeCtx(context.Background(), "sys", s, r, memo2)
	if err != nil {
		t.Fatal(err)
	}
	hits2, misses2, _ := memo2.Stats()
	if hits2 != 1 || misses2 != 0 {
		t.Fatalf("run 2 memo stats = %d hits / %d misses, want 1/0", hits2, misses2)
	}
	if hits2 <= hits1 {
		t.Fatalf("restart did not raise the hit count: %d then %d", hits1, hits2)
	}
	if sh, sm, _, _, _ := st2.Stats(); sh != 1 || sm != 0 {
		t.Fatalf("store stats after warm start = %d hits / %d misses, want 1/0", sh, sm)
	}
	if err := automata.EquivalentReachable(got, want); err != nil {
		t.Fatalf("warm-started composition diverged from a fresh build: %v", err)
	}
}

func TestStoreCorruptRecordEvictedNeverReturned(t *testing.T) {
	dir := t.TempDir()
	st, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	payload := []byte("a perfectly good payload")
	st.Save("compose", 1, 2, payload)
	names := recordFiles(t, dir)
	if len(names) != 1 {
		t.Fatalf("record files = %v, want exactly one", names)
	}
	path := filepath.Join(dir, names[0])

	// Flip one payload byte: the checksum no longer matches.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if p, ok := st.Load("compose", 1, 2); ok {
		t.Fatalf("corrupt record returned: %q", p)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt record not evicted from disk: %v", err)
	}
	if _, _, evictions, entries, _ := st.Stats(); evictions != 1 || entries != 0 {
		t.Fatalf("stats = %d evictions, %d entries, want 1, 0", evictions, entries)
	}

	// Truncation (the crash-mid-write shape atomic renames prevent, but a
	// torn disk can still produce): same contract.
	st.Save("compose", 1, 2, payload)
	path = filepath.Join(dir, recordFiles(t, dir)[0])
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Load("compose", 1, 2); ok {
		t.Fatal("truncated record returned")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("truncated record not evicted from disk: %v", err)
	}

	// A record truncated while the store was down must not survive reopen.
	st.Save("closure", 3, 4, payload)
	path = filepath.Join(dir, recordFiles(t, dir)[0])
	if err := os.Truncate(path, 12); err != nil {
		t.Fatal(err)
	}
	st2, err := memostore.Open(dir, memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := st2.Load("closure", 3, 4); ok {
		t.Fatal("truncated record returned after reopen")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	st, err := memostore.Open(t.TempDir(), memostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	payloadFor := func(k uint64) []byte {
		return bytes.Repeat([]byte{byte('a' + k)}, int(8+k))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				k := uint64((i + w) % 10)
				st.Save("compose", k, k, payloadFor(k))
				if p, ok := st.Load("compose", k, k); ok && !bytes.Equal(p, payloadFor(k)) {
					t.Errorf("key %d: read %q, want %q", k, p, payloadFor(k))
				}
			}
		}(w)
	}
	wg.Wait()
	if _, _, _, entries, _ := st.Stats(); entries != 10 {
		t.Fatalf("entries = %d, want 10 (first save per key wins)", entries)
	}
}

func TestStoreSizeCapEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	st, err := memostore.Open(dir, memostore.Options{MaxBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	pay := bytes.Repeat([]byte("x"), 40)
	st.Save("compose", 1, 0, pay)
	st.Save("compose", 2, 0, pay)
	if _, ok := st.Load("compose", 1, 0); !ok { // touch 1: record 2 is now LRU
		t.Fatal("record 1 missing before the sweep")
	}
	st.Save("compose", 3, 0, pay) // 120 > 100: sweep evicts record 2

	if _, ok := st.Load("compose", 2, 0); ok {
		t.Fatal("least-recently-used record survived the size cap")
	}
	for _, k := range []uint64{1, 3} {
		if _, ok := st.Load("compose", k, 0); !ok {
			t.Fatalf("record %d evicted, want only the LRU gone", k)
		}
	}
	if _, _, evictions, entries, b := st.Stats(); evictions != 1 || entries != 2 || b != 80 {
		t.Fatalf("stats = %d evictions, %d entries, %d bytes; want 1, 2, 80", evictions, entries, b)
	}

	// An oversized record must not evict itself: the sweep spares the
	// just-written record even though the store stays over the cap.
	st.Save("compose", 9, 0, bytes.Repeat([]byte("y"), 500))
	if _, ok := st.Load("compose", 9, 0); !ok {
		t.Fatal("just-written oversized record was swept away")
	}
	if _, _, _, entries, _ := st.Stats(); entries != 1 {
		t.Fatalf("entries = %d, want 1 (everything but the oversized record evicted)", entries)
	}
}

func TestStoreUnboundedAndNilSafety(t *testing.T) {
	st, err := memostore.Open(t.TempDir(), memostore.Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for k := uint64(0); k < 8; k++ {
		st.Save("closure", k, 0, bytes.Repeat([]byte("z"), 64))
	}
	if _, _, evictions, entries, _ := st.Stats(); evictions != 0 || entries != 8 {
		t.Fatalf("unbounded store stats = %d evictions, %d entries; want 0, 8", evictions, entries)
	}

	// A nil *Store is a valid disabled backend.
	var nilStore *memostore.Store
	if _, ok := nilStore.Load("compose", 1, 2); ok {
		t.Fatal("nil store claimed a hit")
	}
	nilStore.Save("compose", 1, 2, []byte("x"))
	if err := nilStore.Close(); err != nil {
		t.Fatal(err)
	}
}
