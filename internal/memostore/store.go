// Package memostore is the persistent half of the closure/product
// memoization stack: a content-addressed, size-capped on-disk record store
// layered under the in-memory automata.MemoCache (it implements
// automata.MemoBackend without importing the automata package — payloads
// are opaque bytes).
//
// Records are keyed by the structural fingerprints the cache already uses
// (internal/automata/fingerprint.go), which are stable across processes,
// so a restarted or sibling verifyd process warm-starts every closure and
// product the store has seen instead of recomputing it.
//
// Durability and integrity:
//
//   - one file per record, named by operation and key
//     ("compose-<a>-<b>.memo"), written to a temp file in the store
//     directory and atomically renamed into place — a crash mid-write
//     leaves at worst an ignored temp file, never a torn record;
//   - every record carries a versioned header with the payload length and
//     an FNV-1a checksum; a read that fails any of those checks evicts
//     the file and reports a miss, so a corrupt record can never reach
//     the cache;
//   - total payload bytes are capped (Options.MaxBytes): the store sweeps
//     least-recently-used records until it fits, keeping long-running
//     services bounded on disk.
//
// The store is safe for concurrent use; all operations serialize on one
// mutex (record granularity is a whole closure/product — microseconds of
// I/O against milliseconds of construction — so the mutex is nowhere near
// contention).
package memostore

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"muml/internal/obs"
)

// magic identifies a record file and pins the header layout; bumping the
// trailing digit invalidates every existing record.
const magic = "MUMLMST1"

// headerSize is magic + payload length (8 bytes LE) + checksum (8 bytes LE).
const headerSize = len(magic) + 8 + 8

// DefaultMaxBytes caps the store's payload bytes when Options.MaxBytes is
// zero: 256 MiB holds hundreds of thousands of typical closure records.
const DefaultMaxBytes = 256 << 20

// recordSuffix names record files; everything else in the directory is
// ignored (in particular the write-temp files of a crashed process).
const recordSuffix = ".memo"

// Options configure a store.
type Options struct {
	// MaxBytes caps the total payload bytes kept on disk (0 =
	// DefaultMaxBytes, negative = unbounded). When an insert pushes the
	// store over the cap, least-recently-used records are evicted until it
	// fits again.
	MaxBytes int64
	// Journal, when non-nil, receives one store_hit/store_miss event per
	// Load and one store_evict per removed record.
	Journal *obs.Journal
	// Metrics, when non-nil, receives the store.hits, store.misses,
	// store.writes, store.evictions, and store.bytes_written counters plus
	// the store.bytes max-gauge (peak resident payload bytes).
	Metrics *obs.Registry
}

// Store is a content-addressed on-disk record store. Open one per
// directory; concurrent processes may share a directory (atomic renames
// keep records consistent), though each process sweeps against its own
// view of the contents.
type Store struct {
	dir      string
	maxBytes int64
	journal  *obs.Journal

	mHits, mMisses, mWrites, mEvicts, mBytesWritten *obs.Counter
	gBytes                                          *obs.MaxGauge

	mu      sync.Mutex
	entries map[string]*list.Element // record name -> lru element
	lru     *list.List               // front = most recently used
	bytes   int64                    // sum of payload sizes of live entries

	hits, misses, evictions int64
}

// lruEntry is the per-record bookkeeping held in the LRU list.
type lruEntry struct {
	name string
	size int64
}

// Open creates the directory if needed, indexes the records already in it
// (ordered by modification time, so the LRU survives restarts
// approximately), and sweeps to the size cap.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memostore: %w", err)
	}
	maxBytes := opts.MaxBytes
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		journal:  opts.Journal,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),

		mHits:         opts.Metrics.Counter("store.hits"),
		mMisses:       opts.Metrics.Counter("store.misses"),
		mWrites:       opts.Metrics.Counter("store.writes"),
		mEvicts:       opts.Metrics.Counter("store.evictions"),
		mBytesWritten: opts.Metrics.Counter("store.bytes_written"),
		gBytes:        opts.Metrics.MaxGauge("store.bytes"),
	}
	if err := s.index(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.sweepLocked("")
	s.mu.Unlock()
	return s, nil
}

// index loads the existing records into the LRU, oldest first, so that a
// restarted store evicts what the previous process used least recently.
func (s *Store) index() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("memostore: %w", err)
	}
	type stat struct {
		name  string
		size  int64
		mtime int64
	}
	var stats []stat
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), recordSuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // deleted concurrently; skip
		}
		size := info.Size() - int64(headerSize)
		if size < 0 {
			size = 0
		}
		stats = append(stats, stat{name: de.Name(), size: size, mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].mtime != stats[j].mtime {
			return stats[i].mtime < stats[j].mtime
		}
		return stats[i].name < stats[j].name
	})
	for _, st := range stats {
		s.entries[st.name] = s.lru.PushFront(&lruEntry{name: st.name, size: st.size})
		s.bytes += st.size
	}
	s.gBytes.Observe(s.bytes)
	return nil
}

// recordName maps a key to its file name. The op string comes from the
// cache's closed operation set ("compose"/"closure") but is sanitized
// anyway so no key can ever escape the store directory.
func recordName(op string, a, b uint64) string {
	var sb strings.Builder
	for _, r := range op {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return fmt.Sprintf("%s-%016x-%016x%s", sb.String(), a, b, recordSuffix)
}

// Load returns the payload stored under the key, or false. A record that
// fails the header or checksum validation is evicted and reported as a
// miss — never returned.
func (s *Store) Load(op string, a, b uint64) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	name := recordName(op, a, b)
	s.mu.Lock()
	defer s.mu.Unlock()
	elem := s.entries[name]
	if elem == nil {
		s.miss(op, name, a, b)
		return nil, false
	}
	payload, err := readRecord(filepath.Join(s.dir, name))
	if err != nil {
		s.evictLocked(elem, "corrupt")
		s.miss(op, name, a, b)
		return nil, false
	}
	s.lru.MoveToFront(elem)
	s.hits++
	s.mHits.Add(1)
	if s.journal.Enabled() {
		s.journal.Emit(obs.Event{Kind: obs.KindStoreHit, Iter: -1,
			S: map[string]string{"op": op, "key": name},
			N: map[string]int64{"key_a": int64(a), "key_b": int64(b), "bytes": int64(len(payload))},
		})
	}
	return payload, true
}

// miss counts and journals one failed lookup; callers hold s.mu.
func (s *Store) miss(op, name string, a, b uint64) {
	s.misses++
	s.mMisses.Add(1)
	if s.journal.Enabled() {
		s.journal.Emit(obs.Event{Kind: obs.KindStoreMiss, Iter: -1,
			S: map[string]string{"op": op, "key": name},
			N: map[string]int64{"key_a": int64(a), "key_b": int64(b)},
		})
	}
}

// Save persists the payload under the key: the record is written to a
// temp file and renamed into place, then the LRU is swept back under the
// size cap. The first save for a key wins; a failed write leaves the
// store unchanged (persistence is an optimization, never a correctness
// requirement, so errors are absorbed as if the record were evicted).
func (s *Store) Save(op string, a, b uint64, payload []byte) {
	if s == nil {
		return
	}
	name := recordName(op, a, b)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries[name] != nil {
		return
	}
	if err := writeRecord(s.dir, name, payload); err != nil {
		return
	}
	size := int64(len(payload))
	s.entries[name] = s.lru.PushFront(&lruEntry{name: name, size: size})
	s.bytes += size
	s.mWrites.Add(1)
	s.mBytesWritten.Add(size)
	s.gBytes.Observe(s.bytes)
	s.sweepLocked(name)
}

// sweepLocked evicts least-recently-used records until the store fits the
// size cap, sparing the just-written record (keep), so one oversized
// record cannot evict itself into a write-recompute thrash loop.
func (s *Store) sweepLocked(keep string) {
	if s.maxBytes < 0 {
		return
	}
	for s.bytes > s.maxBytes {
		elem := s.lru.Back()
		if elem == nil {
			return
		}
		if elem.Value.(*lruEntry).name == keep {
			if elem = elem.Prev(); elem == nil {
				return
			}
		}
		s.evictLocked(elem, "size")
	}
}

// evictLocked removes one record from disk and the index; callers hold
// s.mu.
func (s *Store) evictLocked(elem *list.Element, reason string) {
	e := elem.Value.(*lruEntry)
	os.Remove(filepath.Join(s.dir, e.name))
	s.lru.Remove(elem)
	delete(s.entries, e.name)
	s.bytes -= e.size
	s.evictions++
	s.mEvicts.Add(1)
	if s.journal.Enabled() {
		s.journal.Emit(obs.Event{Kind: obs.KindStoreEvict, Iter: -1,
			S: map[string]string{"key": e.name, "reason": reason},
			N: map[string]int64{"bytes": e.size},
		})
	}
}

// Stats returns the lifetime hit/miss/eviction counts of this process and
// the current record count and payload bytes on disk.
func (s *Store) Stats() (hits, misses, evictions int64, entries int, bytes int64) {
	if s == nil {
		return 0, 0, 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions, len(s.entries), s.bytes
}

// Dir returns the store directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Close flushes the store. Writes are synchronous and atomic, so this is
// a final capacity sweep plus a handshake point for graceful shutdown;
// the store must not be used afterwards.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked("")
	return nil
}

// writeRecord writes header+payload to a temp file in dir and renames it
// to name, so readers only ever observe complete records.
func writeRecord(dir, name string, payload []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint64(hdr[len(magic):], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hdr[len(magic)+8:], checksum(payload))
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}

// readRecord reads and validates one record file, returning its payload.
func readRecord(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("memostore: %s: bad header", filepath.Base(path))
	}
	n := binary.LittleEndian.Uint64(data[len(magic):])
	sum := binary.LittleEndian.Uint64(data[len(magic)+8:])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("memostore: %s: truncated payload (%d of %d bytes)", filepath.Base(path), len(payload), n)
	}
	if checksum(payload) != sum {
		return nil, fmt.Errorf("memostore: %s: checksum mismatch", filepath.Base(path))
	}
	return payload, nil
}

// checksum is FNV-1a over the payload — the same hash family the
// fingerprint keys use, good enough to reject torn or bit-rotted records.
func checksum(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}
