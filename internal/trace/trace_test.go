package trace

import (
	"strings"
	"testing"

	"muml/internal/automata"
)

func buildPair(t *testing.T) *automata.Automaton {
	t.Helper()
	s := automata.New("shuttle2", automata.EmptySet, automata.NewSignalSet("convoyProposal"))
	s0 := s.MustAddState("noConvoy")
	s1 := s.MustAddState("wait")
	s.MustAddTransition(s0, automata.Interact(nil, []automata.Signal{"convoyProposal"}), s1)
	s.MarkInitial(s0)

	r := automata.New("shuttle1", automata.NewSignalSet("convoyProposal"), automata.EmptySet)
	r0 := r.MustAddState("noConvoy")
	r1 := r.MustAddState("answer")
	r.MustAddTransition(r0, automata.Interact([]automata.Signal{"convoyProposal"}, nil), r1)
	r.MarkInitial(r0)
	return automata.MustCompose("sys", r, s)
}

func TestRenderCounterexampleListingStyle(t *testing.T) {
	sys := buildPair(t)
	init := sys.Initial()[0]
	tr := sys.TransitionsFrom(init)[0]
	run := &automata.Run{
		States: []automata.StateID{init, tr.To},
		Steps:  []automata.Interaction{tr.Label},
	}
	text := RenderCounterexample(sys, run)
	wantLines := []string{
		"shuttle1.noConvoy, shuttle2.noConvoy",
		"shuttle2.convoyProposal!, shuttle1.convoyProposal?",
		"shuttle1.answer, shuttle2.wait",
	}
	got := strings.Split(strings.TrimSpace(text), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("rendered %d lines, want %d:\n%s", len(got), len(wantLines), text)
	}
	for i, want := range wantLines {
		if got[i] != want {
			t.Fatalf("line %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestRenderCounterexampleDeadlockRun(t *testing.T) {
	sys := buildPair(t)
	init := sys.Initial()[0]
	run := &automata.Run{
		States:   []automata.StateID{init},
		Steps:    []automata.Interaction{automata.Interact(nil, nil)},
		Deadlock: true,
	}
	text := RenderCounterexample(sys, run)
	if !strings.Contains(text, "<blocked>") {
		t.Fatalf("deadlock marker missing:\n%s", text)
	}
	if !strings.Contains(text, "τ") {
		t.Fatalf("empty interaction should render as τ:\n%s", text)
	}
}

func TestRenderModel(t *testing.T) {
	a := automata.New("m", automata.NewSignalSet("x"), automata.NewSignalSet("y"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	x := automata.Interact([]automata.Signal{"x"}, []automata.Signal{"y"})
	a.MustAddTransition(s0, x, s1)
	a.MarkInitial(s0)
	m := automata.NewIncomplete(a)
	if err := m.Block(s1, automata.Interact([]automata.Signal{"x"}, nil)); err != nil {
		t.Fatal(err)
	}

	text := RenderModel(m)
	for _, want := range []string{"> s0", "x? y! -> s1", "x? blocked", "1 refusals"} {
		if !strings.Contains(text, want) {
			t.Fatalf("RenderModel missing %q:\n%s", want, text)
		}
	}
}
