// Package trace renders runs of composed systems in the notation of the
// paper's listings. Listing 1.1, for example, alternates composed state
// lines with message lines in which each signal is attributed to its
// sender (!) and receiver (?):
//
//	shuttle1.noConvoy, shuttle2.s_all
//	shuttle2.convoyProposal!, shuttle1.convoyProposal?
//	shuttle1.answer, shuttle2.wait
//	...
package trace

import (
	"fmt"
	"strings"

	"muml/internal/automata"
)

// RenderCounterexample renders a run of the (composed) automaton in the
// paper's counterexample listing style. Each interaction signal is printed
// once per involved leaf: "leaf.signal!" when the leaf outputs it and
// "leaf.signal?" when the leaf consumes it. Steps without any signal
// render as "τ" (a pure time step).
func RenderCounterexample(sys *automata.Automaton, run *automata.Run) string {
	var b strings.Builder
	leaves := sys.Leaves()
	for i, st := range run.States {
		b.WriteString(renderState(sys, leaves, st))
		b.WriteByte('\n')
		if i < len(run.States)-1 {
			b.WriteString(renderStep(sys, leaves, run.Steps[i]))
			b.WriteByte('\n')
		}
	}
	if run.Deadlock {
		b.WriteString(renderStep(sys, leaves, run.Steps[len(run.Steps)-1]))
		b.WriteString("\n<blocked>\n")
	}
	return b.String()
}

func renderState(sys *automata.Automaton, leaves []string, st automata.StateID) string {
	parts := sys.StateParts(st)
	if len(parts) != len(leaves) {
		// No per-leaf provenance: fall back to the raw state name.
		return sys.StateName(st)
	}
	names := make([]string, len(parts))
	for i, p := range parts {
		names[i] = leaves[i] + "." + p
	}
	return strings.Join(names, ", ")
}

func renderStep(sys *automata.Automaton, leaves []string, step automata.Interaction) string {
	// Senders first, then receivers, matching the paper's listings
	// ("shuttle2.convoyProposal!, shuttle1.convoyProposal?").
	var entries []string
	for _, leaf := range leaves {
		_, out, ok := sys.LeafAlphabet(leaf)
		if !ok {
			continue
		}
		for _, sig := range step.Out.Intersect(out).Signals() {
			entries = append(entries, fmt.Sprintf("%s.%s!", leaf, sig))
		}
	}
	for _, leaf := range leaves {
		in, _, ok := sys.LeafAlphabet(leaf)
		if !ok {
			continue
		}
		for _, sig := range step.In.Intersect(in).Signals() {
			entries = append(entries, fmt.Sprintf("%s.%s?", leaf, sig))
		}
	}
	if len(entries) == 0 {
		return "τ"
	}
	return strings.Join(entries, ", ")
}

// RenderModel renders an incomplete automaton as a compact textual listing
// of its learned transitions and refusals, used when reporting synthesized
// behavior models (Figs. 6 and 7).
func RenderModel(m *automata.Incomplete) string {
	a := m.Automaton()
	var b strings.Builder
	fmt.Fprintf(&b, "model %s: %d states, %d transitions, %d refusals\n",
		a.Name(), a.NumStates(), a.NumTransitions(), m.NumBlocked())
	initials := make(map[automata.StateID]bool)
	for _, q := range a.Initial() {
		initials[q] = true
	}
	for i := 0; i < a.NumStates(); i++ {
		s := automata.StateID(i)
		marker := " "
		if initials[s] {
			marker = ">"
		}
		fmt.Fprintf(&b, "%s %s\n", marker, a.StateName(s))
		for _, t := range a.TransitionsFrom(s) {
			fmt.Fprintf(&b, "    %s -> %s\n", renderLabel(t.Label), a.StateName(t.To))
		}
		for _, x := range m.BlockedAt(s) {
			fmt.Fprintf(&b, "    %s blocked\n", renderLabel(x))
		}
	}
	return b.String()
}

func renderLabel(x automata.Interaction) string {
	var parts []string
	for _, sig := range x.In.Signals() {
		parts = append(parts, string(sig)+"?")
	}
	for _, sig := range x.Out.Signals() {
		parts = append(parts, string(sig)+"!")
	}
	if len(parts) == 0 {
		return "τ"
	}
	return strings.Join(parts, " ")
}
