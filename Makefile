GO ?= go

.PHONY: all check fmt vet build test race bench timings obs-smoke printcheck mbt-soak fuzz-smoke

all: check

check: fmt vet printcheck build race bench obs-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order within each package, so
# order-dependent tests fail loudly instead of passing by accident.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark as a smoke test (correctness assertions
# inside the benchmark bodies still run).
bench:
	$(GO) test -run 'XXX' -bench . -benchtime=1x ./...

# Regenerate the incremental-vs-rebuild timing report.
timings:
	$(GO) run ./cmd/experiments -timings BENCH_incremental.json

# End-to-end journal check: run a full synthesis with -journal and
# validate every emitted line against the event schema.
obs-smoke:
	@tmp="$$(mktemp)"; \
	$(GO) run ./cmd/legint -scenario correct -journal "$$tmp" >/dev/null && \
	$(GO) run ./cmd/obscheck "$$tmp"; \
	status=$$?; rm -f "$$tmp"; exit $$status

# Model-based soundness soak: run the synthesis loop against SOAK_N
# generated systems with known ground truth, checking every verdict
# against the oracles in internal/mbt. Failures are shrunk and written
# to the regression corpus. Replay one seed: go run ./cmd/mbt -seed S -n 1
SOAK_SEED ?= 1
SOAK_N ?= 200
mbt-soak:
	$(GO) run ./cmd/mbt -seed $(SOAK_SEED) -n $(SOAK_N) -corpus internal/mbt/testdata

# Short randomized fuzzing pass over the model-based harness entry
# points; CI-sized, not a real fuzzing campaign.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test ./internal/mbt -fuzz FuzzSynthesisSoundness -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mbt -fuzz FuzzRefinementLaws -fuzztime $(FUZZTIME)

# All progress reporting goes through internal/obs; stray fmt.Print* in
# internal/ (outside obs, trace, and tests) bypasses the journal.
printcheck:
	@out="$$(grep -rn 'fmt\.Print' internal/ --include='*.go' \
		| grep -v '_test\.go' \
		| grep -v '^internal/obs/' \
		| grep -v '^internal/trace/' || true)"; \
	if [ -n "$$out" ]; then \
		echo "fmt.Print* outside internal/obs and internal/trace:"; echo "$$out"; exit 1; \
	fi
