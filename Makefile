GO ?= go

.PHONY: all check fmt vet build test race bench timings obs-smoke printcheck

all: check

check: fmt vet printcheck build race bench obs-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark as a smoke test (correctness assertions
# inside the benchmark bodies still run).
bench:
	$(GO) test -run 'XXX' -bench . -benchtime=1x ./...

# Regenerate the incremental-vs-rebuild timing report.
timings:
	$(GO) run ./cmd/experiments -timings BENCH_incremental.json

# End-to-end journal check: run a full synthesis with -journal and
# validate every emitted line against the event schema.
obs-smoke:
	@tmp="$$(mktemp)"; \
	$(GO) run ./cmd/legint -scenario correct -journal "$$tmp" >/dev/null && \
	$(GO) run ./cmd/obscheck "$$tmp"; \
	status=$$?; rm -f "$$tmp"; exit $$status

# All progress reporting goes through internal/obs; stray fmt.Print* in
# internal/ (outside obs, trace, and tests) bypasses the journal.
printcheck:
	@out="$$(grep -rn 'fmt\.Print' internal/ --include='*.go' \
		| grep -v '_test\.go' \
		| grep -v '^internal/obs/' \
		| grep -v '^internal/trace/' || true)"; \
	if [ -n "$$out" ]; then \
		echo "fmt.Print* outside internal/obs and internal/trace:"; echo "$$out"; exit 1; \
	fi
