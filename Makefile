GO ?= go

.PHONY: all check fmt vet build test race bench timings

all: check

check: fmt vet build race bench

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark as a smoke test (correctness assertions
# inside the benchmark bodies still run).
bench:
	$(GO) test -run 'XXX' -bench . -benchtime=1x ./...

# Regenerate the incremental-vs-rebuild timing report.
timings:
	$(GO) run ./cmd/experiments -timings BENCH_incremental.json
