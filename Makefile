GO ?= go

.PHONY: all check lint fmt vet build test race bench timings batch-bench bench-ctl bench-check batch-smoke obs-smoke verifyd-smoke printcheck staticcheck mbt-soak fuzz-smoke

all: check

check: lint build race bench obs-smoke verifyd-smoke

# Static checks only — no tests. CI's lint job runs exactly this.
lint: fmt vet printcheck staticcheck

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order within each package, so
# order-dependent tests fail loudly instead of passing by accident.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark as a smoke test (correctness assertions
# inside the benchmark bodies still run).
bench:
	$(GO) test -run 'XXX' -bench . -benchtime=1x ./...

# Regenerate the incremental-vs-rebuild timing report.
timings:
	$(GO) run ./cmd/experiments -timings BENCH_incremental.json

# Regenerate the batch-throughput report (sequential vs parallel workers).
batch-bench:
	$(GO) run ./cmd/experiments -batch BENCH_batch.json

# Regenerate the CTL engine report (legacy reference vs bitset checker).
# The collector itself asserts the ≥5x speedup floor on the layered
# scenarios, so a bad regeneration cannot silently weaken the baseline.
bench-ctl:
	$(GO) run ./cmd/experiments -ctl BENCH_ctl.json

# Bench-regression gate: re-measure the timing, batch, and CTL reports
# into a temp directory and compare their wall-time aggregates against the
# committed BENCH_*.json baselines with cmd/benchcmp. BENCH_THRESHOLD is
# the allowed relative slowdown (committed numbers come from
# `make timings batch-bench bench-ctl`). The CTL leg gates check_ns only:
# the legacy and parallel columns are context, not promises. Shared runners stall for seconds at a time
# — spikes that survive even the collectors' median-of-9 — so a failed
# comparison re-measures up to BENCH_RETRIES times before it counts:
# a genuine regression fails every attempt, a host stall does not.
BENCH_THRESHOLD ?= 0.30
BENCH_RETRIES ?= 3
bench-check:
	@tmp="$$(mktemp -d)"; status=1; \
	for attempt in $$(seq 1 $(BENCH_RETRIES)); do \
		[ $$attempt -gt 1 ] && echo "bench-check: attempt $$attempt of $(BENCH_RETRIES)"; \
		$(GO) run ./cmd/experiments -timings "$$tmp/incremental.json" >/dev/null && \
		$(GO) run ./cmd/experiments -batch "$$tmp/batch.json" >/dev/null && \
		$(GO) run ./cmd/experiments -ctl "$$tmp/ctl.json" >/dev/null && \
		$(GO) run ./cmd/benchcmp -threshold $(BENCH_THRESHOLD) BENCH_incremental.json "$$tmp/incremental.json" && \
		$(GO) run ./cmd/benchcmp -threshold $(BENCH_THRESHOLD) BENCH_batch.json "$$tmp/batch.json" && \
		$(GO) run ./cmd/benchcmp -threshold $(BENCH_THRESHOLD) -keys check_ns BENCH_ctl.json "$$tmp/ctl.json" && \
		{ status=0; break; }; \
	done; \
	rm -rf "$$tmp"; exit $$status

# Concurrent smoke: 64 generated instances across 8 workers; verdict
# identity with the sequential run is asserted by internal/batch tests.
batch-smoke:
	$(GO) run ./cmd/batchverify -seed 1 -n 64 -workers 8

# End-to-end observability smoke, in two halves. First the journal
# schema check: a full synthesis with -journal, validated line by line
# (including the causal-trace span invariants). Then the live plane: a
# batchverify with -http and -linger runs in the background, /progress is
# polled until the pool drains, /healthz, /metrics (Prometheus), and the
# final /progress snapshot are scraped and asserted, the process is shut
# down with SIGINT (exercising the graceful-drain path), and the batch
# journal goes through obscheck plus the offline journalstat analytics
# with a Chrome-trace export. Everything lands in OBS_SMOKE_DIR so CI can
# upload the artifacts when the smoke fails.
OBS_SMOKE_DIR ?= /tmp/obs-smoke
OBS_HTTP_ADDR ?= 127.0.0.1:8473
obs-smoke:
	@set -e; rm -rf "$(OBS_SMOKE_DIR)"; mkdir -p "$(OBS_SMOKE_DIR)"; \
	$(GO) run ./cmd/legint -scenario correct -journal "$(OBS_SMOKE_DIR)/legint.jsonl" >/dev/null; \
	$(GO) run ./cmd/obscheck "$(OBS_SMOKE_DIR)/legint.jsonl"; \
	$(GO) build -o "$(OBS_SMOKE_DIR)/batchverify" ./cmd/batchverify; \
	"$(OBS_SMOKE_DIR)/batchverify" -seed 1 -n 16 -workers 4 \
		-store "$(OBS_SMOKE_DIR)/store" -sample-interval 100ms \
		-journal "$(OBS_SMOKE_DIR)/batch.jsonl" -http "$(OBS_HTTP_ADDR)" -linger \
		>"$(OBS_SMOKE_DIR)/batchverify.out" 2>"$(OBS_SMOKE_DIR)/batchverify.err" & \
	pid=$$!; \
	for i in $$(seq 1 150); do \
		if curl -fsS "http://$(OBS_HTTP_ADDR)/progress" 2>/dev/null | grep -q '"queued":0,"running":0'; then break; fi; \
		if ! kill -0 $$pid 2>/dev/null; then echo "batchverify exited early:"; cat "$(OBS_SMOKE_DIR)/batchverify.err"; exit 1; fi; \
		sleep 0.2; \
	done; \
	curl -fsS "http://$(OBS_HTTP_ADDR)/healthz" | grep -q ok; \
	curl -fsS "http://$(OBS_HTTP_ADDR)/metrics" >"$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -q '^muml_batch_instances_total 16$$' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_ctl_words_scanned_total [1-9]' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_ctl_frontier_states_total [1-9]' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -q '^muml_build_info{' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_batch_instance_ns_count 16$$' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_core_check_ns_bucket\{le="\+Inf"\} [1-9]' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_ctl_check_ns_count [1-9]' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_store_misses_total [1-9]' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_store_writes_total [1-9]' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -q '^muml_store_hits_total' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_runtime_heap_live_bytes [1-9]' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_runtime_goroutines [1-9]' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -Eq '^muml_runtime_alloc_bytes_total [1-9]' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	grep -q '^muml_runtime_gc_cycles_total' "$(OBS_SMOKE_DIR)/metrics.prom"; \
	curl -fsS "http://$(OBS_HTTP_ADDR)/progress" >"$(OBS_SMOKE_DIR)/progress.json"; \
	grep -q '"done":16' "$(OBS_SMOKE_DIR)/progress.json"; \
	curl -sS -N --max-time 2 "http://$(OBS_HTTP_ADDR)/events" >"$(OBS_SMOKE_DIR)/events.sse" || true; \
	grep -q '^data:' "$(OBS_SMOKE_DIR)/events.sse"; \
	curl -fsS "http://$(OBS_HTTP_ADDR)/journal/tail?n=8" >"$(OBS_SMOKE_DIR)/journal-tail.json"; \
	grep -q '"kind"' "$(OBS_SMOKE_DIR)/journal-tail.json"; \
	$(GO) build -o "$(OBS_SMOKE_DIR)/mumltop" ./cmd/mumltop; \
	"$(OBS_SMOKE_DIR)/mumltop" -addr "$(OBS_HTTP_ADDR)" -once >"$(OBS_SMOKE_DIR)/mumltop.txt"; \
	grep -q 'phase latencies' "$(OBS_SMOKE_DIR)/mumltop.txt"; \
	grep -q 'muml_batch_instances_total' "$(OBS_SMOKE_DIR)/mumltop.txt"; \
	grep -q 'recent events' "$(OBS_SMOKE_DIR)/mumltop.txt"; \
	grep -q 'runtime   heap' "$(OBS_SMOKE_DIR)/mumltop.txt"; \
	kill -INT $$pid; wait $$pid; \
	$(GO) run ./cmd/obscheck "$(OBS_SMOKE_DIR)/batch.jsonl"; \
	grep -q '"kind":"resource_sample"' "$(OBS_SMOKE_DIR)/batch.jsonl"; \
	grep -q '"kind":"cost_report"' "$(OBS_SMOKE_DIR)/batch.jsonl"; \
	$(GO) run ./cmd/journalstat -trace "$(OBS_SMOKE_DIR)/trace.json" "$(OBS_SMOKE_DIR)/batch.jsonl"; \
	$(GO) run ./cmd/journalstat -cost "$(OBS_SMOKE_DIR)/batch.jsonl" >"$(OBS_SMOKE_DIR)/journalstat-cost.txt"; \
	grep -q 'cost' "$(OBS_SMOKE_DIR)/journalstat-cost.txt"; \
	$(GO) run ./cmd/journalstat -diff "$(OBS_SMOKE_DIR)/legint.jsonl" "$(OBS_SMOKE_DIR)/batch.jsonl" >/dev/null; \
	echo "obs-smoke: live plane and analytics ok"

# Verification-service smoke: boot cmd/verifyd under -race, drive a
# 32-instance manifest job over HTTP, check the shard-merge contract,
# restart the process against the same store directory, and assert the
# warm start (strictly more memo hits, byte-identical verdicts) plus the
# muml_store_*/muml_verifyd_* metric families and journal validity. The
# script is scripts/verifyd_smoke.sh; artifacts land in VERIFYD_SMOKE_DIR.
VERIFYD_SMOKE_DIR ?= /tmp/verifyd-smoke
VERIFYD_ADDR ?= 127.0.0.1:8491
verifyd-smoke:
	VERIFYD_SMOKE_DIR="$(VERIFYD_SMOKE_DIR)" VERIFYD_ADDR="$(VERIFYD_ADDR)" GO="$(GO)" \
		sh scripts/verifyd_smoke.sh

# Model-based soundness soak: run the synthesis loop against SOAK_N
# generated systems with known ground truth, checking every verdict
# against the oracles in internal/mbt. Failures are shrunk and written
# to the regression corpus. Replay one seed: go run ./cmd/mbt -seed S -n 1
SOAK_SEED ?= 1
SOAK_N ?= 200
mbt-soak:
	$(GO) run ./cmd/mbt -seed $(SOAK_SEED) -n $(SOAK_N) -corpus internal/mbt/testdata

# The same soak over function-nondeterministic legacy components: output
# races, duplicate successors, and lossy outputs, checked via the ioco
# synthesis path and its quiescence-aware oracles.
mbt-soak-nondet:
	$(GO) run ./cmd/mbt -nondet -seed $(SOAK_SEED) -n $(SOAK_N) -corpus internal/mbt/testdata

# Short randomized fuzzing pass over the model-based harness entry
# points; CI-sized, not a real fuzzing campaign.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test ./internal/mbt -fuzz FuzzSynthesisSoundness -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mbt -fuzz FuzzIocoSoundness -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mbt -fuzz FuzzRefinementLaws -fuzztime $(FUZZTIME)

# All progress reporting goes through internal/obs; stray fmt.Print* in
# internal/ (outside obs, trace, and tests) bypasses the journal.
printcheck:
	@out="$$(grep -rn 'fmt\.Print' internal/ --include='*.go' \
		| grep -v '_test\.go' \
		| grep -v '^internal/obs/' \
		| grep -v '^internal/trace/' || true)"; \
	if [ -n "$$out" ]; then \
		echo "fmt.Print* outside internal/obs and internal/trace:"; echo "$$out"; exit 1; \
	fi

# staticcheck when available; the container image does not ship it and
# module downloads are offline, so absence is a skip, not a failure.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
