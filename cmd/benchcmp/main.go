// Command benchcmp compares two benchmark report JSON documents (the
// committed BENCH_*.json baselines vs freshly measured ones) and fails
// when a wall-time metric regresses beyond the threshold.
//
//	benchcmp BENCH_incremental.json /tmp/incremental.json
//	benchcmp -threshold 0.5 -keys wall_ns,ns_per_instance old.json new.json
//
// Both documents are walked structurally: objects by key, arrays element
// by element (by their "name" field when present, so reordered or added
// scenarios still line up; top-level arrays like BENCH_ctl.json work the
// same way). Only numeric leaves whose key matches -keys are compared —
// these are lower-is-better nanosecond aggregates; noisy per-iteration
// breakdowns are ignored. A metric present only in the baseline is a
// failure (a scenario silently disappeared), and so is a named array
// entry absent from the current report even when it carries no compared
// metrics — a scenario must not vanish just because its numbers were not
// selected. A metric only in the current report is informational, and so
// is a 0ns baseline (the phase never ran when the baseline was recorded,
// so no finite ratio exists). Exit status: 0 when within the threshold,
// 1 on regression or missing metrics/entries, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 0.30, "allowed relative slowdown before failing (0.30 = +30%)")
		keys      = fs.String("keys", "wall_ns,ns_per_instance", "comma-separated numeric leaf keys to compare (lower is better)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintf(stderr, "benchcmp: usage: benchcmp [flags] baseline.json current.json\n")
		fs.Usage()
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintf(stderr, "benchcmp: -threshold must be positive\n")
		return 2
	}
	compared := map[string]bool{}
	for _, k := range strings.Split(*keys, ",") {
		if k = strings.TrimSpace(k); k != "" {
			compared[k] = true
		}
	}
	if len(compared) == 0 {
		fmt.Fprintf(stderr, "benchcmp: -keys selects nothing\n")
		return 2
	}

	baseline, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 2
	}
	current, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 2
	}

	base := map[string]float64{}
	cur := map[string]float64{}
	collect(baseline, "", compared, base)
	collect(current, "", compared, cur)
	if len(base) == 0 {
		fmt.Fprintf(stderr, "benchcmp: baseline %s has no %v metrics\n", fs.Arg(0), sortedKeys(compared))
		return 2
	}

	paths := make([]string, 0, len(base))
	for p := range base {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	failures := 0
	missing := map[string]bool{}
	for _, p := range paths {
		b := base[p]
		c, ok := cur[p]
		if !ok {
			fmt.Fprintf(stderr, "MISSING %-52s baseline %.0fns, absent from current report\n", p, b)
			failures++
			missing[p] = true
			continue
		}
		switch {
		case b == 0 && c == 0:
			fmt.Fprintf(stdout, "ok      %-52s 0ns -> 0ns\n", p)
		case b == 0:
			// A 0ns baseline means the phase never ran when the baseline
			// was recorded; no finite ratio exists, so report it without
			// pretending it is within threshold — and without failing.
			fmt.Fprintf(stdout, "warn    %-52s baseline 0ns -> %.0fns (no ratio for zero baseline)\n", p, c)
		case c/b-1 > *threshold:
			fmt.Fprintf(stderr, "REGRESS %-52s %.0fns -> %.0fns (%+.1f%%, limit %+.0f%%)\n",
				p, b, c, 100*(c/b-1), 100**threshold)
			failures++
		default:
			fmt.Fprintf(stdout, "ok      %-52s %.0fns -> %.0fns (%+.1f%%)\n", p, b, c, 100*(c/b-1))
		}
	}
	// A named array entry known to the baseline must still exist in the
	// current report, even when none of its numeric leaves are among the
	// compared keys — otherwise a scenario with unselected metrics can
	// vanish without tripping the gate. Entries whose disappearance already
	// fired metric-level MISSING lines (or that nest under an entry
	// reported here) are not re-reported.
	baseNames := map[string]bool{}
	curNames := map[string]bool{}
	collectNames(baseline, "", baseNames)
	collectNames(current, "", curNames)
	var reportedEntries []string
	for _, p := range sortedKeys(baseNames) {
		if curNames[p] || coveredByMissing(p, missing) || underAny(p, reportedEntries) {
			continue
		}
		fmt.Fprintf(stderr, "MISSING %-52s baseline entry absent from current report\n", p)
		failures++
		reportedEntries = append(reportedEntries, p)
	}

	for p := range cur {
		if _, ok := base[p]; !ok {
			fmt.Fprintf(stdout, "new     %-52s %.0fns (no baseline)\n", p, cur[p])
		}
	}

	if failures > 0 {
		fmt.Fprintf(stderr, "benchcmp: %d metric(s) or entries regressed or went missing (limit %+.0f%%)\n", failures, 100**threshold)
		return 1
	}
	fmt.Fprintf(stdout, "benchcmp: %d metric(s) within %+.0f%%\n", len(paths), 100**threshold)
	return 0
}

func load(path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// collect walks the document and records every selected numeric leaf under
// a slash-separated structural path. Array elements carrying a "name"
// field are addressed by it so report reordering does not shift paths.
func collect(doc any, path string, keys map[string]bool, out map[string]float64) {
	switch v := doc.(type) {
	case map[string]any:
		for k, child := range v {
			if num, ok := child.(float64); ok && keys[k] {
				out[join(path, k)] = num
				continue
			}
			collect(child, join(path, k), keys, out)
		}
	case []any:
		for i, child := range v {
			label := fmt.Sprintf("%d", i)
			if m, ok := child.(map[string]any); ok {
				if name, ok := m["name"].(string); ok && name != "" {
					label = name
				}
			}
			collect(child, join(path, label), keys, out)
		}
	}
}

// collectNames records the structural path of every named array element,
// so an entry counts as present even when it contributes no compared
// metric. Index-labeled elements are skipped: positions shift on reorder,
// so an index is not a stable identity to hold the current report to.
func collectNames(doc any, path string, out map[string]bool) {
	switch v := doc.(type) {
	case map[string]any:
		for k, child := range v {
			collectNames(child, join(path, k), out)
		}
	case []any:
		for i, child := range v {
			label := fmt.Sprintf("%d", i)
			if m, ok := child.(map[string]any); ok {
				if name, ok := m["name"].(string); ok && name != "" {
					label = name
					out[join(path, label)] = true
				}
			}
			collectNames(child, join(path, label), out)
		}
	}
}

// coveredByMissing reports whether a metric-level MISSING line under the
// entry already announced its disappearance.
func coveredByMissing(entry string, missing map[string]bool) bool {
	for m := range missing {
		if strings.HasPrefix(m, entry+"/") {
			return true
		}
	}
	return false
}

// underAny reports whether path equals or nests under any of the prefixes.
func underAny(path string, prefixes []string) bool {
	for _, pre := range prefixes {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

func join(path, key string) string {
	if path == "" {
		return key
	}
	return path + "/" + key
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
