package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

const baseline = `{
  "scenarios": [
    {"name": "a", "incremental": {"wall_ns": 1000, "compose_ns": 1}, "rebuild": {"wall_ns": 2000}},
    {"name": "b", "incremental": {"wall_ns": 5000}}
  ],
  "parallel": {"ns_per_instance": 100}
}`

func TestWithinThreshold(t *testing.T) {
	current := strings.ReplaceAll(baseline, "1000", "1200") // +20% < 30%
	code, out, errOut := runCLI(t, write(t, "base.json", baseline), write(t, "cur.json", current))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "within +30%") {
		t.Errorf("summary missing: %q", out)
	}
}

func TestRegressionFails(t *testing.T) {
	current := strings.ReplaceAll(baseline, `"wall_ns": 5000`, `"wall_ns": 9000`) // +80%
	code, _, errOut := runCLI(t, write(t, "base.json", baseline), write(t, "cur.json", current))
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "REGRESS") || !strings.Contains(errOut, "scenarios/b/incremental/wall_ns") {
		t.Errorf("regression report missing: %q", errOut)
	}
	// compose_ns is not a compared key: inflating it must not fail.
	current = strings.ReplaceAll(baseline, `"compose_ns": 1`, `"compose_ns": 99999`)
	if code, _, errOut := runCLI(t, write(t, "b2.json", baseline), write(t, "c2.json", current)); code != 0 {
		t.Errorf("uncompared key caused failure: exit %d, %s", code, errOut)
	}
}

func TestThresholdFlag(t *testing.T) {
	current := strings.ReplaceAll(baseline, "1000", "1200") // +20%
	code, _, _ := runCLI(t, "-threshold", "0.1",
		write(t, "base.json", baseline), write(t, "cur.json", current))
	if code != 1 {
		t.Fatalf("exit %d, want 1 at 10%% threshold", code)
	}
}

func TestMissingMetricFails(t *testing.T) {
	current := `{"scenarios": [{"name": "a", "incremental": {"wall_ns": 1000}, "rebuild": {"wall_ns": 2000}}]}`
	code, _, errOut := runCLI(t, write(t, "base.json", baseline), write(t, "cur.json", current))
	if code != 1 || !strings.Contains(errOut, "MISSING") {
		t.Fatalf("exit %d, stderr %q; want MISSING failure", code, errOut)
	}
}

func TestArrayMatchingByName(t *testing.T) {
	// Same scenarios, reversed order: paths must still line up.
	current := `{
  "scenarios": [
    {"name": "b", "incremental": {"wall_ns": 5100}},
    {"name": "a", "incremental": {"wall_ns": 1000, "compose_ns": 1}, "rebuild": {"wall_ns": 2000}}
  ],
  "parallel": {"ns_per_instance": 100}
}`
	code, _, errOut := runCLI(t, write(t, "base.json", baseline), write(t, "cur.json", current))
	if code != 0 {
		t.Fatalf("reordered scenarios failed: exit %d, %s", code, errOut)
	}
}

func TestZeroBaselineIsInformational(t *testing.T) {
	// A 0ns baseline metric has no finite ratio: the phase never ran when
	// the baseline was recorded. Any current value must be reported as a
	// warning, not as a regression (and never as a NaN/∞ verdict).
	base := write(t, "base.json", `{"scenarios": [{"name": "a", "incremental": {"wall_ns": 0}}]}`)
	cur := write(t, "cur.json", `{"scenarios": [{"name": "a", "incremental": {"wall_ns": 5000}}]}`)
	code, out, errOut := runCLI(t, base, cur)
	if code != 0 {
		t.Fatalf("zero baseline failed the gate: exit %d, %s", code, errOut)
	}
	if !strings.Contains(out, "warn") || !strings.Contains(out, "no ratio for zero baseline") {
		t.Errorf("zero baseline not reported as warn: %q", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("non-finite ratio leaked into output: %q", out)
	}
	// 0ns -> 0ns is a clean ok.
	code, out, errOut = runCLI(t, base, base)
	if code != 0 || !strings.Contains(out, "0ns -> 0ns") {
		t.Errorf("0ns self-compare: exit %d, out %q, err %q", code, out, errOut)
	}
}

func TestTopLevelArrayShape(t *testing.T) {
	// BENCH_ctl.json is a top-level JSON array of named scenarios.
	base := write(t, "base.json", `[
  {"name": "large", "check_ns": 1000, "legacy_check_ns": 9000},
  {"name": "wide", "check_ns": 500}
]`)
	cur := write(t, "cur.json", `[
  {"name": "wide", "check_ns": 510},
  {"name": "large", "check_ns": 1100, "legacy_check_ns": 9000}
]`)
	code, out, errOut := runCLI(t, "-keys", "check_ns", base, cur)
	if code != 0 {
		t.Fatalf("top-level array compare failed: exit %d, %s", code, errOut)
	}
	if !strings.Contains(out, "large/check_ns") || !strings.Contains(out, "wide/check_ns") {
		t.Errorf("array scenarios not addressed by name: %q", out)
	}
}

func TestUsageErrors(t *testing.T) {
	base := write(t, "base.json", baseline)
	for _, args := range [][]string{
		{},
		{base},
		{base, "nonexistent.json"},
		{"-threshold", "0", base, base},
		{"-keys", " ", base, base},
		{write(t, "empty.json", `{}`), base},
		{write(t, "junk.json", `not json`), base},
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestCommittedBaselinesAreComparable(t *testing.T) {
	// The committed reports must compare clean against themselves, so the
	// CI gate's only moving part is the fresh measurement.
	baselines := []struct {
		name string
		args []string
	}{
		{name: "BENCH_incremental.json"},
		{name: "BENCH_batch.json"},
		{name: "BENCH_ctl.json", args: []string{"-keys", "check_ns"}},
	}
	for _, b := range baselines {
		path := filepath.Join("..", "..", b.name)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if code, _, errOut := runCLI(t, append(b.args, path, path)...); code != 0 {
			t.Errorf("%s vs itself: exit %d, %s", b.name, code, errOut)
		}
	}
}

func TestMissingNamedEntryWithoutMetricsFails(t *testing.T) {
	// The regression this guards: a baseline entry whose numeric leaves are
	// all outside -keys used to vanish silently, because only compared
	// metrics established presence. It must fail as MISSING now.
	base := write(t, "base.json", `{
  "scenarios": [
    {"name": "a", "incremental": {"wall_ns": 1000}},
    {"name": "b", "note": "no compared metrics here", "compose_ns": 7}
  ]
}`)
	cur := write(t, "cur.json", `{
  "scenarios": [
    {"name": "a", "incremental": {"wall_ns": 1000}}
  ]
}`)
	code, _, errOut := runCLI(t, base, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "MISSING") || !strings.Contains(errOut, "scenarios/b") {
		t.Fatalf("missing named entry not reported: %q", errOut)
	}

	// A present entry with uncompared metrics stays informational.
	if code, _, errOut := runCLI(t, base, base); code != 0 {
		t.Fatalf("self-compare with metric-less entry failed: exit %d, %s", code, errOut)
	}
}

func TestMissingEntryNotDoubleReported(t *testing.T) {
	// When the vanished entry had compared metrics, the metric-level
	// MISSING line already fires; the entry-level check must not add a
	// second failure for the same disappearance.
	base := write(t, "base.json", `{"scenarios": [
  {"name": "a", "incremental": {"wall_ns": 1000}},
  {"name": "b", "incremental": {"wall_ns": 5000}}
]}`)
	cur := write(t, "cur.json", `{"scenarios": [
  {"name": "a", "incremental": {"wall_ns": 1000}}
]}`)
	code, _, errOut := runCLI(t, base, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut)
	}
	if got := strings.Count(errOut, "MISSING"); got != 1 {
		t.Fatalf("MISSING reported %d times, want once:\n%s", got, errOut)
	}
}
