// Command batchverify runs many independent synthesis instances
// concurrently on the internal/batch work-stealing pool and reports
// per-instance verdicts plus aggregate throughput.
//
//	batchverify -seed 1 -n 64 -workers 8
//	batchverify -scenarios -workers 2 -deadline 5s
//	batchverify -manifest batch.jsonl -journal run.jsonl -metrics
//	batchverify -n 256 -http 127.0.0.1:8473 -linger
//
// Instances come from one of three sources: seeded generator instances
// (-seed/-n, optionally -wide/-max-states), the railroad-crossing example
// scenarios (-scenarios), or a JSONL manifest (-manifest) with lines like
// {"seed": 42, "config": "wide"}.
//
// -store layers the persistent on-disk memo store (internal/memostore)
// under the in-memory closure/product cache, so repeated runs against the
// same directory warm-start shared constructions instead of recomputing
// them; cmd/verifyd serves the same store as a long-running service.
//
// -http serves the live observability plane while the batch runs:
// Prometheus metrics on /metrics, a JSON progress snapshot (verdict
// tallies, queue depth, cache hit rate, ETA) on /progress, the journal's
// flight-recorder tail as a live SSE stream on /events and as a JSON
// snapshot on /journal/tail, plus /healthz and /debug/pprof. With
// -linger the server stays up after the batch
// completes until the process is interrupted, so the final snapshot can
// be scraped. SIGINT/SIGTERM cancel the run gracefully: running
// instances abort, the pool drains, and the journal and metrics sinks
// flush before exit.
//
// Exit status: 0 when every instance reached a verdict, 1 when any
// errored or panicked, 2 on usage errors, 3 when instances timed out or
// were canceled by an interrupt (but none hard-errored).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"muml/internal/automata"
	"muml/internal/batch"
	"muml/internal/core"
	"muml/internal/gen"
	"muml/internal/memostore"
	"muml/internal/obs"
	"muml/internal/obs/httpd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("batchverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workers   = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		deadline  = fs.Duration("deadline", 0, "per-instance deadline (0 = unbounded)")
		manifest  = fs.String("manifest", "", "JSONL manifest of instances (one {\"seed\":..,\"config\":..} per line)")
		scenarios = fs.Bool("scenarios", false, "run the railroad-crossing example scenarios")
		seed      = fs.Int64("seed", 1, "generator seed of the first instance")
		n         = fs.Int("n", 64, "number of generated instances")
		wide      = fs.Bool("wide", false, "use the wide-alphabet generator configuration")
		maxStates = fs.Int("max-states", 0, "cap on states per generated automaton (0 = generator default)")
		noMemo    = fs.Bool("no-memo", false, "disable the shared closure/product memo cache")
		storeDir  = fs.String("store", "", "persistent memo-store directory layered under the cache (warm-starts across runs)")
		storeMax  = fs.Int64("store-max-bytes", memostore.DefaultMaxBytes, "on-disk store size cap in payload bytes (negative = unbounded)")
		journal   = fs.String("journal", "", "write the batch event journal (JSONL) to this file")
		metrics   = fs.Bool("metrics", false, "print batch counters and timers on exit")
		httpAddr  = fs.String("http", "", "serve /metrics, /progress, /events, /journal/tail, /healthz, and /debug/pprof on this address while the batch runs")
		linger    = fs.Bool("linger", false, "with -http: keep serving after the batch completes until interrupted")
		sample    = fs.Duration("sample-interval", 0, "sample runtime resources (heap, GC, goroutines) at this period into the journal and metrics (0 = off)")
		verbose   = fs.Bool("v", false, "print every instance result, not just the summary")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "batchverify: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *manifest != "" && *scenarios {
		fmt.Fprintf(stderr, "batchverify: -manifest and -scenarios are mutually exclusive\n")
		return 2
	}

	var items []batch.Item
	switch {
	case *manifest != "":
		f, err := os.Open(*manifest)
		if err != nil {
			fmt.Fprintf(stderr, "batchverify: %v\n", err)
			return 2
		}
		items, err = batch.ManifestItems(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "batchverify: %v\n", err)
			return 2
		}
	case *scenarios:
		items = batch.ScenarioItems()
	default:
		if *n <= 0 {
			fmt.Fprintf(stderr, "batchverify: -n must be positive\n")
			return 2
		}
		cfg := gen.DefaultConfig()
		if *wide {
			cfg = gen.WideConfig()
		}
		if *maxStates > 0 {
			cfg.MaxLegacyStates = *maxStates
			cfg.MaxContextStates = *maxStates
		}
		items = batch.GenItems(*seed, *n, cfg)
	}
	if len(items) == 0 {
		fmt.Fprintf(stderr, "batchverify: no instances to run\n")
		return 2
	}

	ringSize := 0
	if *httpAddr != "" {
		ringSize = obs.DefaultRingSize
	}
	obsRun, err := obs.OpenRun(obs.RunOptions{JournalPath: *journal, Metrics: *metrics || *httpAddr != "", RingSize: ringSize})
	if err != nil {
		fmt.Fprintf(stderr, "batchverify: %v\n", err)
		return 1
	}
	defer obsRun.Close()

	if *sample > 0 {
		sampler := obs.StartRuntimeSampler(obs.RuntimeSamplerOptions{
			Interval: *sample,
			Journal:  obsRun.Journal,
			Registry: obsRun.Registry,
		})
		// LIFO defers: the sampler takes its final sample and stops before
		// obsRun.Close flushes the journal.
		defer sampler.Stop()
	}

	// SIGINT/SIGTERM cancel the run context: running instances abort,
	// the pool drains, and the deferred obsRun.Close flushes the journal
	// so an interrupted run still leaves valid JSONL behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	progress := batch.NewProgress()
	var srv *httpd.Server
	if *httpAddr != "" {
		srv, err = httpd.Start(*httpAddr, httpd.Options{
			Registry: obsRun.Registry,
			Progress: func() any { return progress.Snapshot() },
			Events:   obsRun.Ring,
		})
		if err != nil {
			fmt.Fprintf(stderr, "batchverify: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "batchverify: serving /metrics /progress /events /journal/tail /healthz /debug/pprof on http://%s\n", srv.Addr())
	}

	var memo *automata.MemoCache
	var store *memostore.Store
	if !*noMemo {
		memo = automata.NewMemoCache(obsRun.Journal)
		if *storeDir != "" {
			store, err = memostore.Open(*storeDir, memostore.Options{
				MaxBytes: *storeMax,
				Journal:  obsRun.Journal,
				Metrics:  obsRun.Registry,
			})
			if err != nil {
				fmt.Fprintf(stderr, "batchverify: %v\n", err)
				return 1
			}
			defer store.Close()
			memo.SetBackend(store)
		}
	} else if *storeDir != "" {
		fmt.Fprintf(stderr, "batchverify: -store requires the memo cache (drop -no-memo)\n")
		return 2
	}
	sum, err := batch.Verify(items, batch.Options{
		Workers:  *workers,
		Deadline: *deadline,
		Context:  ctx,
		Memo:     memo,
		Journal:  obsRun.Journal,
		Metrics:  obsRun.Registry,
		Progress: progress,
	})
	if err != nil {
		fmt.Fprintf(stderr, "batchverify: %v\n", err)
		return 1
	}
	// Distinguish an interrupt that cut the batch short (exit 3) from one
	// that merely ends a -linger wait after a complete run (exit 0).
	interrupted := ctx.Err() != nil

	hardErrors := 0
	for _, res := range sum.Results {
		if res.Err != nil && !res.TimedOut {
			hardErrors++
		}
		if *verbose || res.Err != nil {
			w := stdout
			if res.Err != nil {
				w = stderr
			}
			fmt.Fprintf(w, "%s\n", describe(res))
		}
	}

	fmt.Fprintf(stdout,
		"batchverify: %d instances on %d workers in %v (%.1f/s, %d steals): %d proven, %d violations, %d timed out, %d errors\n",
		len(sum.Results), sum.Workers, sum.Duration.Round(time.Millisecond), sum.Throughput(),
		sum.Steals, sum.Proven, sum.Violations, sum.TimedOut, sum.Errored-sum.TimedOut)
	if memo != nil {
		hits, misses, entries := memo.Stats()
		fmt.Fprintf(stdout, "batchverify: memo cache: %d hits, %d misses, %d entries\n", hits, misses, entries)
	}
	if store != nil {
		hits, misses, evictions, entries, bytes := store.Stats()
		fmt.Fprintf(stdout, "batchverify: memo store: %d hits, %d misses, %d evictions, %d records, %d bytes\n",
			hits, misses, evictions, entries, bytes)
	}
	if *metrics {
		obsRun.DumpMetrics(stdout)
	}

	if *linger && srv != nil && ctx.Err() == nil {
		fmt.Fprintf(stderr, "batchverify: batch complete, lingering on http://%s until interrupted\n", srv.Addr())
		<-ctx.Done()
	}

	switch {
	case hardErrors > 0:
		return 1
	case sum.TimedOut > 0, interrupted:
		return 3
	}
	return 0
}

func describe(res batch.Result) string {
	switch {
	case res.TimedOut:
		return fmt.Sprintf("%-28s TIMEOUT after %v (worker %d): %v",
			res.Name, res.Duration.Round(time.Millisecond), res.Worker, res.Err)
	case res.Panicked:
		return fmt.Sprintf("%-28s PANIC (worker %d): %v", res.Name, res.Worker, res.Err)
	case res.Err != nil:
		return fmt.Sprintf("%-28s ERROR (worker %d): %v", res.Name, res.Worker, res.Err)
	case res.Verdict == core.VerdictViolation:
		return fmt.Sprintf("%-28s %s (%s) in %d iterations, %v (worker %d)",
			res.Name, res.Verdict, res.Kind, res.Iterations,
			res.Duration.Round(time.Millisecond), res.Worker)
	default:
		return fmt.Sprintf("%-28s %s in %d iterations, %v (worker %d)",
			res.Name, res.Verdict, res.Iterations,
			res.Duration.Round(time.Millisecond), res.Worker)
	}
}
