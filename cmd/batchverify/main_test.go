package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunGenerated(t *testing.T) {
	code, out, errOut := runCLI(t, "-seed", "1", "-n", "8", "-workers", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "8 instances on 4 workers") {
		t.Errorf("summary missing: %q", out)
	}
	if !strings.Contains(out, "memo cache:") {
		t.Errorf("memo stats missing: %q", out)
	}
}

func TestRunScenariosVerbose(t *testing.T) {
	code, out, errOut := runCLI(t, "-scenarios", "-v", "-workers", "2", "-no-memo")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"crossing-swift-constraint", "crossing-stuck-constraint", "violation"} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "memo cache:") {
		t.Errorf("-no-memo still printed cache stats: %q", out)
	}
}

func TestRunManifestAndJournal(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "batch.jsonl")
	journal := filepath.Join(dir, "run.jsonl")
	lines := "# two tiny instances\n{\"seed\": 3}\n{\"seed\": 4, \"name\": \"second\"}\n"
	if err := os.WriteFile(manifest, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-manifest", manifest, "-journal", journal, "-metrics", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "2 instances") {
		t.Errorf("summary missing: %q", out)
	}
	if !strings.Contains(out, "batch.instances") {
		t.Errorf("-metrics table missing: %q", out)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"batch_start", "instance_done"} {
		if !strings.Contains(string(data), kind) {
			t.Errorf("journal missing %s events:\n%s", kind, data)
		}
	}
}

func TestRunTimeoutExitCode(t *testing.T) {
	// Wide instances under a 1ns deadline cannot finish: expect exit 3.
	code, _, _ := runCLI(t, "-seed", "7", "-n", "2", "-wide", "-max-states", "6",
		"-deadline", "1ns", "-workers", "1")
	if code != 3 {
		t.Fatalf("exit %d, want 3 on timeout", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-bogus-flag"},
		{"-manifest", "nonexistent.jsonl"},
		{"-manifest", "x", "-scenarios"},
		{"positional"},
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestRunWithHTTPPlane(t *testing.T) {
	// An ephemeral port: the plane must come up, serve for the duration
	// of the batch, and tear down cleanly without affecting the verdicts.
	code, out, errOut := runCLI(t, "-seed", "1", "-n", "4", "-workers", "2", "-http", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "serving /metrics /progress /events /journal/tail /healthz /debug/pprof on http://127.0.0.1:") {
		t.Errorf("bound address not announced: %q", errOut)
	}
	if !strings.Contains(out, "4 instances on 2 workers") {
		t.Errorf("summary missing: %q", out)
	}
}

func TestRunHTTPBadAddress(t *testing.T) {
	code, _, errOut := runCLI(t, "-n", "1", "-http", "256.0.0.1:bogus")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "listen") {
		t.Errorf("missing listen diagnostic: %q", errOut)
	}
}
