// Command mumlverify verifies Mechatronic UML coordination patterns: it
// composes role and connector automata and model checks the pattern
// constraint, role invariants, and deadlock freedom, printing
// counterexamples in the paper's listing notation.
//
// Usage:
//
//	mumlverify -pattern railcab [-delay N] [-lossy]
//	mumlverify -pattern railcab-entry -delay N
//	mumlverify -pattern railcab-delayed -delay 2 -lossy
//	mumlverify -pattern railcab -formula "E<> frontRole.convoy" -witness
package main

import (
	"flag"
	"fmt"
	"os"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/muml"
	"muml/internal/obs"
	"muml/internal/railcab"
	"muml/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pattern    = flag.String("pattern", "railcab", "pattern to verify: railcab, railcab-delayed, railcab-entry")
		delay      = flag.Int("delay", 1, "connector delay in time units (for delayed patterns)")
		lossy      = flag.Bool("lossy", false, "lossy connector (for railcab-delayed)")
		formula    = flag.String("formula", "", "additional CCTL formula to check over the composition")
		witness    = flag.Bool("witness", false, "print a witness run for a satisfied existential -formula")
		journal    = flag.String("journal", "", "write the structured run journal (JSONL) to this file")
		metrics    = flag.Bool("metrics", false, "collect span timers and counters; print the table after the run")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	obsRun, err := obs.OpenRun(obs.RunOptions{
		JournalPath: *journal,
		Metrics:     *metrics,
		CPUProfile:  *cpuProfile,
		MemProfile:  *memProfile,
	})
	if err != nil {
		return err
	}
	defer obsRun.Close()
	if obsRun.Journal.Enabled() || obsRun.Registry != nil {
		automata.EnableObservability(obsRun.Journal, obsRun.Registry)
		defer automata.DisableObservability()
	}
	defer obsRun.DumpMetrics(os.Stderr)

	var p *muml.Pattern
	switch *pattern {
	case "railcab":
		p = railcab.Pattern()
	case "railcab-delayed":
		p, err = railcab.DelayedPattern(*delay, *lossy)
	case "railcab-entry":
		p, err = railcab.DelayedEntryPattern(*delay)
	default:
		return fmt.Errorf("unknown pattern %q", *pattern)
	}
	if err != nil {
		return err
	}

	fmt.Printf("verifying pattern %q (%d roles, %d connectors)\n", p.Name, len(p.Roles), len(p.Connectors))
	if p.Constraint != nil {
		fmt.Printf("pattern constraint: %s\n", p.Constraint)
	}
	for _, r := range p.Roles {
		if r.Invariant != nil {
			fmt.Printf("role invariant (%s): %s\n", r.Name, r.Invariant)
		}
	}

	v, err := p.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("\ncomposed system: %d states, %d transitions\n",
		v.System.NumStates(), v.System.NumTransitions())
	if j := obsRun.Journal; j.Enabled() {
		satisfied := int64(0)
		if v.Satisfied {
			satisfied = 1
		}
		j.Emit(obs.Event{Kind: obs.KindCheckResult, Iter: -1, N: map[string]int64{
			"satisfied":     satisfied,
			"failures":      int64(len(v.Failures)),
			"system_states": int64(v.System.NumStates()),
		}, S: map[string]string{"pattern": p.Name}})
		for _, f := range v.Failures {
			ev := obs.Event{Kind: obs.KindCexClassified, Iter: -1, S: map[string]string{
				"property":    f.Property.String(),
				"description": f.Description,
			}}
			if f.Result.Counterexample != nil {
				ev.S["trace"] = trace.RenderCounterexample(v.System, f.Result.Counterexample)
			}
			j.Emit(ev)
		}
		verdict := "proven"
		if !v.Satisfied {
			verdict = "violation"
		}
		j.Emit(obs.Event{Kind: obs.KindVerdict, Iter: -1, S: map[string]string{
			"verdict": verdict, "pattern": p.Name,
		}})
	}

	if *formula != "" {
		f, err := ctl.Parse(*formula)
		if err != nil {
			return err
		}
		checker := ctl.NewChecker(v.System)
		res := checker.Check(f)
		fmt.Printf("\nformula %s: holds=%v\n", f, res.Holds)
		if !res.Holds && res.Counterexample != nil {
			fmt.Printf("counterexample:\n%s", trace.RenderCounterexample(v.System, res.Counterexample))
		}
		if res.Holds && *witness {
			if run, err := checker.Witness(f); err == nil {
				fmt.Printf("witness:\n%s", trace.RenderCounterexample(v.System, run))
			} else {
				fmt.Printf("(no witness: %v)\n", err)
			}
		}
	}
	if v.Satisfied {
		fmt.Println("result: all properties SATISFIED")
		return nil
	}
	fmt.Printf("result: %d properties violated\n\n", len(v.Failures))
	for _, f := range v.Failures {
		fmt.Printf("%s: %s\n", f.Description, f.Property)
		if f.Result.Counterexample != nil {
			fmt.Printf("counterexample:\n%s\n", trace.RenderCounterexample(v.System, f.Result.Counterexample))
		}
	}
	return fmt.Errorf("verification failed")
}
