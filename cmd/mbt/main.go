// Command mbt soaks the synthesis loop against randomly generated
// systems with known ground truth: every verdict the loop produces is
// checked by the model-based soundness oracles (internal/mbt), and any
// failure is greedily shrunk and written to the regression corpus.
//
//	mbt -seed 1 -n 200
//	mbt -seed 1 -n 200 -nondet
//	mbt -seed 42 -n 5000 -max-states 8 -skip-laws
//	mbt -seed 7 -n 100 -journal soak.jsonl -corpus internal/mbt/testdata
//	mbt -seed 1 -n 100000 -deadline 5m
//	mbt -seed 1 -n 100000 -http 127.0.0.1:8474
//
// The run is fully reproducible: instance k uses generator seed
// seed+k, so a reported failing seed can be replayed with -seed <s> -n 1.
//
// -http serves the live observability plane for long soaks: Prometheus
// counters (mbt.instances, mbt.failures, mbt.shrunk) on /metrics, a JSON
// soak snapshot on /progress, the journal tail on /events (SSE) and
// /journal/tail (JSON), plus /healthz and /debug/pprof. SIGINT/SIGTERM
// cancel the soak gracefully — the current instance aborts, sinks flush,
// and the run reports what it covered (exit 3, like a deadline).
//
// Exit status: 0 when every instance passed, 1 on soundness failures,
// 2 on usage errors, 3 when -deadline expired or the soak was
// interrupted before finishing (no failures among the instances that
// did run).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"muml/internal/gen"
	"muml/internal/mbt"
	"muml/internal/obs"
	"muml/internal/obs/httpd"
)

// soakProgress is the /progress snapshot source for a soak run: the
// loop publishes after every instance, concurrent HTTP handlers read.
type soakProgress struct {
	mu   sync.Mutex
	snap soakSnapshot
}

type soakSnapshot struct {
	Target       int `json:"target"`
	Run          int `json:"run"`
	Failures     int `json:"failures"`
	Shrunk       int `json:"shrunk"`
	PropHeld     int `json:"prop_held"`
	PropViolated int `json:"prop_violated"`
	DeadlockFree int `json:"deadlock_free"`
	Deadlocked   int `json:"deadlocked"`
}

func (p *soakProgress) publish(s soakSnapshot) {
	p.mu.Lock()
	p.snap = s
	p.mu.Unlock()
}

func (p *soakProgress) Snapshot() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed      = fs.Int64("seed", 1, "generator seed of the first instance")
		n         = fs.Int("n", 200, "number of instances to run")
		maxStates = fs.Int("max-states", 0, "cap on states per generated automaton (0 = generator default)")
		wide      = fs.Bool("wide", false, "use the wide-alphabet configuration (>64 signals, interner fallback paths)")
		nondet    = fs.Bool("nondet", false, "generate function-nondeterministic legacy components (output races, duplicate successors, lossy outputs) and check them via the ioco path")
		skipLaws  = fs.Bool("skip-laws", false, "check verdict soundness only, skipping the algebraic-law oracles")
		journal   = fs.String("journal", "", "write the synthesis event journal (JSONL) to this file")
		corpus    = fs.String("corpus", "", "directory to write shrunk repros of failures into (empty = report only)")
		deadline  = fs.Duration("deadline", 0, "overall wall-clock budget for the soak (0 = unbounded); exceeding it exits 3")
		httpAddr  = fs.String("http", "", "serve /metrics, /progress, /events, /journal/tail, /healthz, and /debug/pprof on this address while the soak runs")
		verbose   = fs.Bool("v", false, "log every instance, not just failures")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "mbt: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *n <= 0 {
		fmt.Fprintf(stderr, "mbt: -n must be positive\n")
		return 2
	}

	cfg := gen.DefaultConfig()
	if *wide {
		cfg = gen.WideConfig()
	}
	if *nondet {
		cfg = gen.NondetConfig()
	}
	if *maxStates > 0 {
		cfg.MaxLegacyStates = *maxStates
		cfg.MaxContextStates = *maxStates
	}

	ringSize := 0
	if *httpAddr != "" {
		ringSize = obs.DefaultRingSize
	}
	obsRun, err := obs.OpenRun(obs.RunOptions{JournalPath: *journal, Metrics: *httpAddr != "", RingSize: ringSize})
	if err != nil {
		fmt.Fprintf(stderr, "mbt: %v\n", err)
		return 1
	}
	defer obsRun.Close()

	// SIGINT/SIGTERM cancel the soak context: the current instance
	// aborts via Canceled(), and the deferred obsRun.Close flushes the
	// journal so an interrupted soak still leaves valid JSONL behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	progress := &soakProgress{}
	progress.publish(soakSnapshot{Target: *n})
	instCounter := obsRun.Registry.Counter("mbt.instances")
	failCounter := obsRun.Registry.Counter("mbt.failures")
	shrunkCounter := obsRun.Registry.Counter("mbt.shrunk")
	if *httpAddr != "" {
		srv, err := httpd.Start(*httpAddr, httpd.Options{
			Registry: obsRun.Registry,
			Progress: progress.Snapshot,
			Events:   obsRun.Ring,
		})
		if err != nil {
			fmt.Fprintf(stderr, "mbt: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "mbt: serving /metrics /progress /events /journal/tail /healthz /debug/pprof on http://%s\n", srv.Addr())
	}

	opts := mbt.Options{Journal: obsRun.Journal, SkipLaws: *skipLaws, Context: ctx, Nondet: *nondet}
	timedOut := false

	var stats struct {
		run, failures, shrunk    int
		propHeld, propViolated   int
		deadlockFree, deadlocked int
	}
	for i := 0; i < *n; i++ {
		if ctx.Err() != nil {
			timedOut = true
			fmt.Fprintf(stderr, "mbt: %s after %d of %d instances\n", stopCause(ctx, *deadline), i, *n)
			break
		}
		s := *seed + int64(i)
		inst, err := gen.New(s, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "mbt: seed %d: generator: %v\n", s, err)
			return 1
		}
		stats.run++
		instCounter.Add(1)
		if inst.Property != nil {
			if inst.TruePropertyHolds {
				stats.propHeld++
			} else {
				stats.propViolated++
			}
		}
		if inst.TrueDeadlockFree {
			stats.deadlockFree++
		} else {
			stats.deadlocked++
		}
		if *verbose {
			fmt.Fprintf(stdout, "seed %d: %s\n", s, inst.Summary())
		}

		f := mbt.CheckInstance(inst, opts)
		if f == nil {
			progress.publish(soakSnapshot{
				Target: *n, Run: stats.run, Failures: stats.failures, Shrunk: stats.shrunk,
				PropHeld: stats.propHeld, PropViolated: stats.propViolated,
				DeadlockFree: stats.deadlockFree, Deadlocked: stats.deadlocked,
			})
			continue
		}
		if f.Canceled() {
			timedOut = true
			stats.run-- // the verdict was never reached
			instCounter.Add(-1)
			fmt.Fprintf(stderr, "mbt: %s during seed %d (%d of %d instances done)\n",
				stopCause(ctx, *deadline), s, i, *n)
			break
		}
		stats.failures++
		failCounter.Add(1)
		fmt.Fprintf(stderr, "FAIL seed %d: %v\n", s, f)
		shrunk := mbt.Shrink(f, opts)
		if shrunk != nil && shrunk != f {
			stats.shrunk++
			shrunkCounter.Add(1)
			fmt.Fprintf(stderr, "  shrunk: %s\n", shrunk.Instance.Summary())
			f = shrunk
		}
		progress.publish(soakSnapshot{
			Target: *n, Run: stats.run, Failures: stats.failures, Shrunk: stats.shrunk,
			PropHeld: stats.propHeld, PropViolated: stats.propViolated,
			DeadlockFree: stats.deadlockFree, Deadlocked: stats.deadlocked,
		})
		if *corpus != "" {
			// Name by the originating soak seed: Shrink clears the
			// instance seed (the minimized instance no longer matches
			// any generator output), and distinct failures must not
			// overwrite each other.
			path := filepath.Join(*corpus, fmt.Sprintf("%s-seed%d.json", f.Check, s))
			if err := mbt.WriteRepro(path, f); err != nil {
				fmt.Fprintf(stderr, "  write repro: %v\n", err)
			} else {
				fmt.Fprintf(stderr, "  repro: %s\n", path)
			}
		}
	}

	fmt.Fprintf(stdout, "mbt: %d instances from seed %d (φ held %d / violated %d, deadlock-free %d / deadlocked %d)\n",
		stats.run, *seed, stats.propHeld, stats.propViolated, stats.deadlockFree, stats.deadlocked)
	if stats.failures > 0 {
		fmt.Fprintf(stdout, "mbt: %d soundness FAILURES (%d shrunk)\n", stats.failures, stats.shrunk)
		return 1
	}
	if timedOut {
		fmt.Fprintf(stdout, "mbt: no failures in the %d instances that ran before the soak was cut short\n", stats.run)
		return 3
	}
	fmt.Fprintf(stdout, "mbt: all checks passed\n")
	return 0
}

// stopCause names why the soak context ended: an elapsed -deadline reads
// as a timeout, anything else (SIGINT/SIGTERM) as an interrupt.
func stopCause(ctx context.Context, deadline time.Duration) string {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Sprintf("deadline %v exceeded", deadline)
	}
	return "interrupted"
}
