package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallSoak(t *testing.T) {
	var out, errBuf strings.Builder
	journal := filepath.Join(t.TempDir(), "soak.jsonl")
	code := run([]string{"-seed", "1", "-n", "3", "-journal", journal}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "all checks passed") {
		t.Fatalf("missing pass summary: %s", out.String())
	}
}

func TestRunRejectsUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "0"},
		{"-no-such-flag"},
		{"positional"},
	}
	for _, args := range cases {
		var out, errBuf strings.Builder
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, errBuf.String())
		}
	}
}

func TestRunReportsJournalOpenFailure(t *testing.T) {
	var out, errBuf strings.Builder
	code := run([]string{"-n", "1", "-journal", filepath.Join(t.TempDir(), "absent", "x.jsonl")}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestRunDeadlineExitCode(t *testing.T) {
	// A 1ns budget cannot finish even one instance: the soak must stop
	// early and exit 3 (timeout), not 1 (soundness failure).
	var out, errBuf strings.Builder
	code := run([]string{"-seed", "1", "-n", "50", "-deadline", "1ns"}, &out, &errBuf)
	if code != 3 {
		t.Fatalf("exit %d, want 3; stdout: %s stderr: %s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "deadline") {
		t.Errorf("stderr missing deadline notice: %s", errBuf.String())
	}
	if strings.Contains(out.String(), "FAILURES") {
		t.Errorf("timeout misreported as soundness failure: %s", out.String())
	}
}
