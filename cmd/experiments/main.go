// Command experiments regenerates the paper's figures, listings, and
// evaluation claims (see DESIGN.md §4 for the index) and optionally writes
// the EXPERIMENTS.md report.
//
// Usage:
//
//	experiments -list
//	experiments -run E5
//	experiments -all [-report EXPERIMENTS.md]
//	experiments -timings BENCH_incremental.json
//	experiments -batch BENCH_batch.json
//	experiments -ctl BENCH_ctl.json
//	experiments -all -http 127.0.0.1:8475 -metrics
//
// -http serves the live observability plane while experiments run:
// Prometheus metrics on /metrics, a JSON journal-position snapshot on
// /progress, the journal tail on /events (SSE) and /journal/tail (JSON),
// plus /healthz and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"os"

	"muml/internal/automata"
	"muml/internal/experiments"
	"muml/internal/obs"
	"muml/internal/obs/httpd"
	"muml/internal/replay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		runID      = flag.String("run", "", "run a single experiment by ID (e.g. E5)")
		all        = flag.Bool("all", false, "run all experiments")
		parallel   = flag.Int("parallel", 1, "number of experiments to run concurrently (with -all)")
		report     = flag.String("report", "", "write the markdown report to this file (with -all)")
		timings    = flag.String("timings", "", "run the incremental-vs-rebuild timing scenarios and write per-iteration stats as JSON to this file")
		batchOut   = flag.String("batch", "", "run the batch-throughput scenario (sequential vs parallel) and write the report as JSON to this file")
		ctlOut     = flag.String("ctl", "", "run the CTL engine scenarios (legacy reference vs bitset checker) and write the report as JSON to this file")
		ctlMin     = flag.Float64("ctl-min-speedup", 5, "minimum legacy-over-bitset speedup the asserted -ctl scenarios must reach")
		batchN     = flag.Int("batch-n", 64, "number of generated instances for -batch")
		batchSeed  = flag.Int64("batch-seed", 1, "generator seed of the first -batch instance")
		batchW     = flag.Int("batch-workers", 0, "parallel worker count for -batch (0 = GOMAXPROCS)")
		journal    = flag.String("journal", "", "write the structured run journal (JSONL) to this file")
		metrics    = flag.Bool("metrics", false, "collect span timers and counters; print the table after the run")
		httpAddr   = flag.String("http", "", "serve /metrics, /progress, /events, /journal/tail, /healthz, and /debug/pprof on this address while experiments run")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	ringSize := 0
	if *httpAddr != "" {
		ringSize = obs.DefaultRingSize
	}
	run, err := obs.OpenRun(obs.RunOptions{
		JournalPath: *journal,
		Metrics:     *metrics || *httpAddr != "",
		RingSize:    ringSize,
		CPUProfile:  *cpuProfile,
		MemProfile:  *memProfile,
	})
	if err != nil {
		return err
	}
	defer run.Close()
	if *httpAddr != "" {
		srv, err := httpd.Start(*httpAddr, httpd.Options{
			Registry: run.Registry,
			Progress: func() any {
				return struct {
					JournalSeq uint64 `json:"journal_seq"`
				}{JournalSeq: run.Journal.Seq()}
			},
			Events: run.Ring,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: serving /metrics /progress /events /journal/tail /healthz /debug/pprof on http://%s\n", srv.Addr())
	}
	if run.Journal.Enabled() || run.Registry != nil {
		automata.EnableObservability(run.Journal, run.Registry)
		replay.EnableObservability(run.Registry)
		defer automata.DisableObservability()
		defer replay.DisableObservability()
	}
	if *metrics {
		defer run.DumpMetrics(os.Stderr)
	}

	switch {
	case *ctlOut != "":
		scenarios, err := experiments.CollectCTLBench(*ctlMin)
		if err != nil {
			return err
		}
		data, err := experiments.MarshalCTLBench(scenarios)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*ctlOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write ctl report: %w", err)
		}
		for _, sc := range scenarios {
			fmt.Printf("%-18s %6d states %7d trans  legacy %8.2fms  bitset %8.2fms  speedup %5.1fx\n",
				sc.Name, sc.States, sc.Transitions,
				float64(sc.LegacyCheckNS)/1e6, float64(sc.CheckNS)/1e6, sc.Speedup)
		}
		fmt.Printf("ctl report written to %s\n", *ctlOut)
		return nil

	case *batchOut != "":
		rep, err := experiments.CollectBatchBench(*batchSeed, *batchN, *batchW, run.Journal, run.Registry)
		if err != nil {
			return err
		}
		data, err := experiments.MarshalBatchBench(rep)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*batchOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write batch report: %w", err)
		}
		fmt.Printf("batch: %d instances, %d workers vs sequential: %.2fx speedup (%.1f/s vs %.1f/s, gomaxprocs %d)\n",
			rep.Instances, rep.Parallel.Workers, rep.Speedup,
			rep.Parallel.Throughput, rep.Sequential.Throughput, rep.MaxProcs)
		fmt.Printf("batch report written to %s\n", *batchOut)
		return nil

	case *timings != "":
		rep, err := experiments.CollectTimings(run.Journal, run.Registry)
		if err != nil {
			return err
		}
		data, err := experiments.MarshalTimings(rep)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*timings, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write timings: %w", err)
		}
		for _, sc := range rep.Scenarios {
			fmt.Printf("%-26s %2d patches / %d rebuilds  speedup %.2fx\n",
				sc.Name, sc.Incremental.Patches, sc.Incremental.Rebuilds, sc.Speedup)
		}
		fmt.Printf("timings written to %s\n", *timings)
		return nil
	case *list:
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil

	case *runID != "":
		res, err := experiments.Run(*runID)
		if err != nil {
			return err
		}
		printResult(res)
		if !res.Match {
			return fmt.Errorf("experiment %s did not match the expected shape", res.ID)
		}
		return nil

	case *all:
		var (
			results []*experiments.Result
			err     error
		)
		if *parallel > 1 {
			results, err = experiments.RunAllParallel(*parallel)
		} else {
			results, err = experiments.RunAll()
		}
		if err != nil {
			return err
		}
		failures := 0
		for _, r := range results {
			status := "ok"
			if !r.Match {
				status = "MISMATCH"
				failures++
			}
			fmt.Printf("%-4s %-55s %s\n", r.ID, r.Title, status)
		}
		if *report != "" {
			if err := os.WriteFile(*report, []byte(experiments.RenderReport(results)), 0o644); err != nil {
				return fmt.Errorf("write report: %w", err)
			}
			fmt.Printf("report written to %s\n", *report)
		}
		if failures > 0 {
			return fmt.Errorf("%d experiments did not match", failures)
		}
		return nil

	default:
		flag.Usage()
		return fmt.Errorf("one of -list, -run, or -all is required")
	}
}

func printResult(r *experiments.Result) {
	fmt.Printf("%s — %s\n", r.ID, r.Title)
	fmt.Printf("paper artefact: %s\n", r.PaperArtifact)
	fmt.Printf("expectation:    %s\n", r.Expectation)
	fmt.Printf("measured:       %s\n", r.Measured)
	fmt.Printf("match:          %v\n\n%s\n", r.Match, r.Details)
}
