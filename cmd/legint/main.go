// Command legint runs the iterative legacy-integration synthesis of the
// paper on the built-in RailCab scenarios, printing per-iteration
// counterexamples, monitored traces, and the final verdict.
//
// Usage:
//
//	legint -scenario correct|eager|blocking [-verbose] [-paper-literal]
//	legint -context ctx.json -legacy impl.json [-property "A[] not (a and b)"]
//	legint ... -dump-model model.json
//	legint ... -journal run.jsonl -metrics [-cpuprofile cpu.pprof]
package main

import (
	"flag"
	"fmt"
	"os"

	"muml/internal/automata"
	"muml/internal/core"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/obs"
	"muml/internal/railcab"
	"muml/internal/replay"
	"muml/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario    = flag.String("scenario", "correct", "legacy controller: correct, eager, or blocking")
		contextFile = flag.String("context", "", "JSON automaton file for a custom context (with -legacy)")
		legacyFile  = flag.String("legacy", "", "JSON automaton file wrapped as the black-box legacy component")
		property    = flag.String("property", "", "CCTL property to establish (default: RailCab constraint, or ¬δ only for custom models)")
		dumpModel   = flag.String("dump-model", "", "write the final learned model (JSON) to this file")
		verbose     = flag.Bool("verbose", false, "render the event journal (counterexamples, replay traces) to stdout")
		literal     = flag.Bool("paper-literal", false, "restrict learning to Definitions 11-12 (ablation)")
		multi       = flag.Bool("multi", false, "run the two-component demo instead (Section 7 extension)")
		journalPath = flag.String("journal", "", "write the structured run journal (JSONL) to this file")
		metrics     = flag.Bool("metrics", false, "collect span timers and counters; print the table after the run")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile (with per-phase pprof labels) to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *multi {
		return runMulti()
	}

	var (
		comp    legacy.Component
		context *automata.Automaton
		iface   legacy.Interface
		prop    ctl.Formula
		title   string
	)
	switch {
	case *contextFile != "" || *legacyFile != "":
		if *contextFile == "" || *legacyFile == "" {
			return fmt.Errorf("-context and -legacy must be given together")
		}
		var err error
		context, err = loadAutomaton(*contextFile)
		if err != nil {
			return err
		}
		legacyAuto, err := loadAutomaton(*legacyFile)
		if err != nil {
			return err
		}
		wrapped, err := legacy.WrapAutomaton(legacyAuto)
		if err != nil {
			return fmt.Errorf("legacy model must be function-deterministic: %w", err)
		}
		comp = wrapped
		iface = wrapped.InterfaceOf()
		title = fmt.Sprintf("%s (from %s)", iface.Name, *legacyFile)
	default:
		switch *scenario {
		case "correct":
			comp = &railcab.CorrectShuttle{}
		case "eager":
			comp = &railcab.EagerShuttle{}
		case "blocking":
			comp = &railcab.BlockingShuttle{}
		default:
			return fmt.Errorf("unknown scenario %q", *scenario)
		}
		context = railcab.FrontRole()
		iface = railcab.RearInterface(railcab.RearRoleName)
		prop = railcab.Constraint()
		title = *scenario
	}
	if *property != "" {
		var err error
		prop, err = ctl.Parse(*property)
		if err != nil {
			return err
		}
	}

	obsOpts := obs.RunOptions{
		JournalPath: *journalPath,
		Metrics:     *metrics,
		CPUProfile:  *cpuProfile,
		MemProfile:  *memProfile,
	}
	if *verbose {
		obsOpts.Extra = obs.NewTextSink(os.Stdout)
	}
	run, err := obs.OpenRun(obsOpts)
	if err != nil {
		return err
	}
	defer run.Close()
	if run.Journal.Enabled() || run.Registry != nil {
		automata.EnableObservability(run.Journal, run.Registry)
		replay.EnableObservability(run.Registry)
		defer automata.DisableObservability()
		defer replay.DisableObservability()
	}

	opts := core.Options{
		Property:             prop,
		PaperLiteralLearning: *literal,
		MaxIterations:        200,
		Journal:              run.Journal,
		Metrics:              run.Registry,
		PhaseProfiling:       *cpuProfile != "",
	}
	synth, err := core.New(context, comp, iface, opts)
	if err != nil {
		return err
	}

	fmt.Printf("integrating legacy component %q against context %q\n", title, context.Name())
	if prop != nil {
		fmt.Printf("property: %s and deadlock freedom\n\n", prop)
	} else {
		fmt.Printf("property: deadlock freedom\n\n")
	}

	report, err := synth.Run()
	if err != nil {
		return err
	}

	for _, it := range report.Iterations {
		fmt.Printf("iteration %d: model %d states / %d transitions / %d refusals, |system| = %d\n",
			it.Index, it.ModelStates, it.ModelTransitions, it.ModelBlocked, it.SystemStates)
		if it.Counterexample == nil {
			fmt.Println("  property and deadlock freedom hold — proof complete (Lemma 5)")
			continue
		}
		fmt.Printf("  check failed (property=%v deadlock-free=%v); test outcome: %v\n",
			it.PropertyHolds, it.DeadlockFree, it.Test)
	}

	fmt.Printf("\nverdict: %v", report.Verdict)
	if report.Verdict == core.VerdictViolation {
		fmt.Printf(" (%v)\nwitness:\n%s", report.Kind, report.WitnessText)
	}
	fmt.Printf("\nfinal learned model:\n%s", trace.RenderModel(report.Model))
	fmt.Printf("\nstats: %+v\n", report.Stats)
	if *metrics {
		fmt.Printf("\nmetrics:\n")
		run.DumpMetrics(os.Stdout)
	}

	if *dumpModel != "" {
		data, err := automata.EncodeIncompleteJSON(report.Model)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dumpModel, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("learned model written to %s\n", *dumpModel)
	}
	return nil
}

func loadAutomaton(path string) (*automata.Automaton, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return automata.DecodeJSON(data)
}

// runMulti demonstrates the Section 7 extension: a coordinator context
// polling two independent black-box services, both learned in parallel.
func runMulti() error {
	coordinator := automata.New("coordinator",
		automata.NewSignalSet("pong1", "pong2"),
		automata.NewSignalSet("ping1", "ping2"))
	c0 := coordinator.MustAddState("askFirst")
	c1 := coordinator.MustAddState("awaitFirst")
	c2 := coordinator.MustAddState("askSecond")
	c3 := coordinator.MustAddState("awaitSecond")
	coordinator.MustAddTransition(c0, automata.Interact(nil, []automata.Signal{"ping1"}), c1)
	coordinator.MustAddTransition(c1, automata.Interact([]automata.Signal{"pong1"}, nil), c2)
	coordinator.MustAddTransition(c2, automata.Interact(nil, []automata.Signal{"ping2"}), c3)
	coordinator.MustAddTransition(c3, automata.Interact([]automata.Signal{"pong2"}, nil), c0)
	coordinator.MarkInitial(c0)

	service := func(idx string) (legacy.Component, legacy.Interface) {
		ping := automata.Signal("ping" + idx)
		pong := automata.Signal("pong" + idx)
		comp := &legacy.FuncComponent{
			Name:    "service" + idx,
			Initial: "idle",
			Next: map[string]map[string]legacy.FuncStep{
				"idle": {"": {To: "idle"}, string(ping): {To: "got"}},
				"got":  {"": {Out: []automata.Signal{pong}, To: "idle"}},
			},
		}
		iface := legacy.Interface{
			Name:    "service" + idx,
			Inputs:  automata.NewSignalSet(ping),
			Outputs: automata.NewSignalSet(pong),
		}
		return comp, iface
	}
	c1comp, i1 := service("1")
	c2comp, i2 := service("2")

	m, err := core.NewMulti(coordinator,
		[]legacy.Component{c1comp, c2comp},
		[]legacy.Interface{i1, i2}, core.Options{})
	if err != nil {
		return err
	}
	fmt.Println("multi-component synthesis (Section 7 extension): coordinator ‖ service1 ‖ service2")
	report, err := m.Run()
	if err != nil {
		return err
	}
	fmt.Printf("verdict: %v after %d iterations\n\n", report.Verdict, report.Iterations)
	for i, model := range report.Models {
		fmt.Printf("learned model of component %d:\n%s\n", i+1, trace.RenderModel(model))
	}
	return nil
}
