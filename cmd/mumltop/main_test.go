package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"muml/internal/obs"
	"muml/internal/obs/httpd"
)

// startPlane spins up a live observability plane the way a verification
// command would: a registry with a histogram and counters, and a journal
// ring with a few events.
func startPlane(t *testing.T) (addr string) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("batch.instances").Add(3)
	h := reg.Histogram("core.check")
	h.Observe(2 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	h.Observe(900 * time.Millisecond)

	ring := obs.NewRingSink(16)
	j := obs.NewJournal(ring)
	j.Emit(obs.Event{Kind: obs.KindBatchStart, Iter: -1, N: map[string]int64{"instances": 3}})
	j.Emit(obs.Event{Kind: obs.KindInstanceDone, Iter: -1, DurNS: 2_000_000,
		S: map[string]string{"name": "gen-seed-1", "verdict": "proven"}})

	srv, err := httpd.Start("127.0.0.1:0", httpd.Options{
		Registry: reg,
		Progress: func() any {
			return map[string]any{
				"instances": 3, "workers": 2, "queued": 0, "running": 1, "done": 2,
				"proven": 1, "violations": 1, "errored": 0, "timed_out": 0,
				"cache_hits": 7, "cache_misses": 3,
				"elapsed_ns": int64(1_500_000_000), "eta_ns": int64(750_000_000),
			}
		},
		Events: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

func TestOnceRendersFullFrame(t *testing.T) {
	addr := startPlane(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-addr", addr, "-once"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	frame := out.String()
	if strings.Contains(frame, "\x1b[") {
		t.Error("-once frame contains ANSI control sequences")
	}
	for _, want := range []string{
		"mumltop — http://" + addr,
		"batch     2/3 done",
		"verdicts  1 proven   1 violations",
		"memo      7 hits / 3 misses (70.0% hit rate)",
		"eta 750ms",
		"phase latencies",
		"core_check",
		"p50≤",
		"muml_batch_instances_total",
		"muml_build_info",
		"recent events (journal tail)",
		"instance_done",
		"name=gen-seed-1",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame misses %q:\n%s", want, frame)
		}
	}
	// The histogram panel shows a sparkline for the three observations.
	for _, line := range strings.Split(frame, "\n") {
		if strings.Contains(line, "core_check") && !strings.ContainsAny(line, "▁▂▃▄▅▆▇█") {
			t.Errorf("histogram row has no sparkline: %q", line)
		}
	}
}

func TestOnceFailsOnUnreachablePlane(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:1", "-once"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errBuf.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"stray-arg"},
		{"-interval", "0s"},
	} {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) exit %d, want 2", args, code)
		}
	}
}

func TestCutBucket(t *testing.T) {
	fam, le, ok := cutBucket(`muml_core_check_ns_bucket{le="2048"}`)
	if !ok || fam != "muml_core_check_ns" || le != "2048" {
		t.Errorf("cutBucket = %q %q %v", fam, le, ok)
	}
	if _, _, ok := cutBucket("muml_core_check_ns_sum"); ok {
		t.Error("cutBucket accepted a non-bucket sample")
	}
	if fam, le, ok := cutBucket(`muml_x_ns_bucket{le="+Inf"}`); !ok || fam != "muml_x_ns" || le != "+Inf" {
		t.Errorf("cutBucket +Inf = %q %q %v", fam, le, ok)
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(make([]int64, 8)); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
	s := sparkline([]int64{0, 1, 0, 8, 0})
	if !strings.HasPrefix(s, "▁") || !strings.HasSuffix(s, "█") {
		t.Errorf("sparkline = %q, want low first bucket and full last", s)
	}
	if strings.ContainsAny(s, "\x00") || len([]rune(s)) != 3 {
		t.Errorf("sparkline = %q, want 3 cells (buckets 1..3)", s)
	}
}

func TestEventTailBoundsAndSnapshot(t *testing.T) {
	tail := newEventTail(2)
	for i := uint64(1); i <= 4; i++ {
		tail.push(obs.Event{Seq: i, Kind: obs.KindNote, Iter: -1})
	}
	snap := tail.snapshot()
	if len(snap) != 2 || snap[0].Seq != 3 || snap[1].Seq != 4 {
		t.Errorf("snapshot = %+v, want seqs 3,4", snap)
	}
}
