// Command mumltop is a terminal dashboard for a running verification
// command's live observability plane (the -http flag on batchverify,
// mbt, and experiments). It polls /progress and /metrics, streams the
// journal from /events, and redraws a single-screen summary: verdict
// tallies and ETA, memo-cache hit rate, a runtime resource panel (live
// heap with a history sparkline, goroutines, GC cycles, overload state —
// fed by the muml_runtime_* families when the plane runs a resource
// sampler), per-phase latency histograms as sparklines, and the most
// recent journal events.
//
//	mumltop -addr 127.0.0.1:8473
//	mumltop -addr 127.0.0.1:8473 -interval 500ms -n 12
//	mumltop -addr 127.0.0.1:8473 -once
//
// -once renders one plain-text frame (no ANSI control sequences, the
// journal tail fetched from /journal/tail instead of streamed) and
// exits — the mode used by scripts, tests, and the obs-smoke gate.
//
// Exit status: 0 on success, 1 when the plane is unreachable in -once
// mode, 2 on usage errors. In live mode fetch errors are shown in the
// frame and retried on the next tick.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"muml/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mumltop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8473", "host:port of the observability plane to watch")
		interval = fs.Duration("interval", time.Second, "refresh interval in live mode")
		once     = fs.Bool("once", false, "render one plain frame and exit")
		tailN    = fs.Int("n", 8, "journal events shown in the recent-events panel")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "mumltop: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *interval <= 0 {
		fmt.Fprintf(stderr, "mumltop: -interval must be positive\n")
		return 2
	}
	if *tailN < 0 {
		*tailN = 0
	}
	base := "http://" + *addr
	client := &http.Client{Timeout: 5 * time.Second}

	// heapHist is the client-side heap-live history behind the runtime
	// panel's sparkline, appended to on every successful /metrics poll.
	var heapHist []int64

	if *once {
		frame, err := renderFrame(client, base, *tailN, nil, &heapHist)
		if err != nil {
			fmt.Fprintf(stderr, "mumltop: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, frame)
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The live journal arrives over /events; the streamer keeps the last
	// -n events in a client-side ring that each frame snapshots. When the
	// stream is down (plane restarting, subscriber dropped for falling
	// behind) it reconnects with backoff and the frame says so.
	tail := newEventTail(*tailN)
	go streamEvents(ctx, base, tail, *interval)

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		frame, err := renderFrame(client, base, *tailN, tail, &heapHist)
		var b strings.Builder
		b.WriteString("\x1b[H\x1b[2J") // home + clear
		if err != nil {
			fmt.Fprintf(&b, "mumltop — %s — unreachable: %v\n(retrying every %v, ^C to quit)\n", base, err, *interval)
		} else {
			b.WriteString(frame)
			fmt.Fprintf(&b, "\nrefresh %v — ^C to quit\n", *interval)
		}
		fmt.Fprint(stdout, b.String())
		select {
		case <-ctx.Done():
			fmt.Fprintln(stdout)
			return 0
		case <-ticker.C:
		}
	}
}

// heapHistMax bounds the runtime panel's heap sparkline width.
const heapHistMax = 60

// renderFrame fetches one consistent view of the plane and renders it.
// With a nil tail (the -once mode) the recent events come from
// /journal/tail instead of the live stream. heapHist accumulates the
// heap-live readings the runtime panel's sparkline draws.
func renderFrame(client *http.Client, base string, tailN int, tail *eventTail, heapHist *[]int64) (string, error) {
	progress, err := fetchProgress(client, base)
	if err != nil {
		return "", err
	}
	metrics, err := fetchMetrics(client, base)
	if err != nil {
		return "", err
	}
	if heap, ok := scalarInt(metrics, "muml_runtime_heap_live_bytes"); ok {
		*heapHist = append(*heapHist, heap)
		if len(*heapHist) > heapHistMax {
			*heapHist = (*heapHist)[len(*heapHist)-heapHistMax:]
		}
	}
	var events []obs.Event
	streamed := false
	if tail != nil {
		events = tail.snapshot()
		streamed = true
	} else if tailN > 0 {
		// Best-effort: a plane without a journal ring serves 404 here.
		events, _ = fetchJournalTail(client, base, tailN)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "mumltop — %s\n\n", base)
	renderProgress(&b, progress)
	renderRuntime(&b, metrics, *heapHist)
	renderHistograms(&b, metrics)
	renderCounters(&b, metrics)
	renderEvents(&b, events, tailN, streamed, tail)
	return b.String(), nil
}

// --- data sources ---

func fetchProgress(client *http.Client, base string) (map[string]any, error) {
	resp, err := client.Get(base + "/progress")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/progress: status %s", resp.Status)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("/progress: %w", err)
	}
	return m, nil
}

func fetchJournalTail(client *http.Client, base string, n int) ([]obs.Event, error) {
	resp, err := client.Get(base + "/journal/tail?n=" + strconv.Itoa(n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/journal/tail: status %s", resp.Status)
	}
	var events []obs.Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		return nil, fmt.Errorf("/journal/tail: %w", err)
	}
	return events, nil
}

// histFamily is one muml_*_ns histogram reconstructed from the text
// exposition: per-bucket (non-cumulative) counts aligned with
// obs.HistogramBounds plus the overflow bucket, and the _sum/_count pair.
type histFamily struct {
	buckets []int64
	sumNS   int64
	count   int64
}

// metricsView is the parsed /metrics exposition: plain counters/gauges by
// sample name, histograms by family base name (without the _ns suffix).
type metricsView struct {
	scalars    map[string]string
	histograms map[string]*histFamily
}

// fetchMetrics parses the subset of the Prometheus text format the plane
// emits: `name value` samples, and `name_bucket{le="…"} value` histogram
// series. Unknown or malformed lines are skipped — the dashboard renders
// what it understands.
func fetchMetrics(client *http.Client, base string) (*metricsView, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %s", resp.Status)
	}
	v := &metricsView{scalars: make(map[string]string), histograms: make(map[string]*histFamily)}
	boundIndex := make(map[string]int, len(obs.HistogramBounds))
	for i, b := range obs.HistogramBounds {
		boundIndex[strconv.FormatInt(b, 10)] = i
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if fam, le, isBucket := cutBucket(name); isBucket {
			h := v.histograms[fam]
			if h == nil {
				h = &histFamily{buckets: make([]int64, obs.NumHistogramBuckets)}
				v.histograms[fam] = h
			}
			cum, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				continue
			}
			idx, ok := boundIndex[le]
			if le == "+Inf" {
				idx, ok = len(obs.HistogramBounds), true
			}
			if ok {
				h.buckets[idx] = cum // cumulative for now; diffed below
			}
			continue
		}
		if fam, isSum := strings.CutSuffix(name, "_ns_sum"); isSum {
			if h := v.histograms[fam+"_ns"]; h != nil {
				h.sumNS, _ = strconv.ParseInt(value, 10, 64)
			} else if n, err := strconv.ParseInt(value, 10, 64); err == nil {
				v.histograms[fam+"_ns"] = &histFamily{buckets: make([]int64, obs.NumHistogramBuckets), sumNS: n}
			}
			continue
		}
		if fam, isCount := strings.CutSuffix(name, "_ns_count"); isCount {
			if h := v.histograms[fam+"_ns"]; h != nil {
				h.count, _ = strconv.ParseInt(value, 10, 64)
			}
			continue
		}
		v.scalars[name] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// The exposition carries cumulative buckets; the sparklines and
	// quantile math want per-bucket counts.
	for _, h := range v.histograms {
		for i := len(h.buckets) - 1; i > 0; i-- {
			h.buckets[i] -= h.buckets[i-1]
		}
	}
	return v, nil
}

// cutBucket splits `muml_core_check_ns_bucket{le="2048"}` into the family
// name (muml_core_check_ns) and the le value.
func cutBucket(sample string) (family, le string, ok bool) {
	fam, rest, found := strings.Cut(sample, "_bucket{le=\"")
	if !found || !strings.HasSuffix(rest, "\"}") {
		return "", "", false
	}
	return fam, strings.TrimSuffix(rest, "\"}"), true
}

// --- rendering ---

// progressOrder lists the batch /progress fields in display order; other
// sources' fields fall back to alphabetical.
var progressOrder = []string{
	"instances", "workers", "queued", "running", "done",
	"proven", "violations", "errored", "timed_out", "panicked",
	"cache_hits", "cache_misses", "cache_hit_rate",
	"elapsed_ns", "median_instance_ns", "eta_ns",
}

func renderProgress(b *strings.Builder, m map[string]any) {
	if len(m) == 0 {
		fmt.Fprintf(b, "progress: (no source)\n")
		return
	}
	if _, isBatch := m["instances"]; isBatch {
		fmt.Fprintf(b, "batch     %s/%s done   %s running   %s queued   %s workers\n",
			num(m, "done"), num(m, "instances"), num(m, "running"), num(m, "queued"), num(m, "workers"))
		fmt.Fprintf(b, "verdicts  %s proven   %s violations   %s errors   %s timeouts\n",
			num(m, "proven"), num(m, "violations"), num(m, "errored"), num(m, "timed_out"))
		if hits, misses := intField(m, "cache_hits"), intField(m, "cache_misses"); hits+misses > 0 {
			fmt.Fprintf(b, "memo      %d hits / %d misses (%.1f%% hit rate)\n",
				hits, misses, 100*float64(hits)/float64(hits+misses))
		}
		fmt.Fprintf(b, "clock     elapsed %s   median %s   eta %s\n",
			durField(m, "elapsed_ns"), durField(m, "median_instance_ns"), durField(m, "eta_ns"))
		if running, ok := m["running_instances"].([]any); ok && len(running) > 0 {
			names := make([]string, 0, len(running))
			for _, r := range running {
				names = append(names, fmt.Sprint(r))
			}
			fmt.Fprintf(b, "active    %s\n", strings.Join(names, "  "))
		}
		b.WriteString("\n")
		return
	}
	// Generic JSON object (mbt soaks, experiments): known order first,
	// then the rest alphabetically.
	rendered := make(map[string]bool)
	var parts []string
	add := func(k string) {
		if v, ok := m[k]; ok && !rendered[k] {
			rendered[k] = true
			if strings.HasSuffix(k, "_ns") {
				parts = append(parts, fmt.Sprintf("%s %s", strings.TrimSuffix(k, "_ns"), durField(m, k)))
			} else {
				parts = append(parts, fmt.Sprintf("%s %v", k, v))
			}
		}
	}
	for _, k := range progressOrder {
		add(k)
	}
	for _, k := range sortedKeys(m) {
		add(k)
	}
	fmt.Fprintf(b, "progress  %s\n\n", strings.Join(parts, "   "))
}

// renderRuntime renders the resource panel fed by the muml_runtime_*
// families, present when the watched plane runs a RuntimeSampler
// (verifyd always, batchverify with -sample-interval). hist is the
// client-side heap-live history; with a single poll (-once) the
// sparkline is omitted.
func renderRuntime(b *strings.Builder, v *metricsView, hist []int64) {
	heap, ok := scalarInt(v, "muml_runtime_heap_live_bytes")
	if !ok {
		return
	}
	goal, _ := scalarInt(v, "muml_runtime_heap_goal_bytes")
	goroutines, _ := scalarInt(v, "muml_runtime_goroutines")
	gc, _ := scalarInt(v, "muml_runtime_gc_cycles_total")
	rate, _ := scalarInt(v, "muml_runtime_alloc_rate_bps")
	state := ""
	if ov, _ := scalarInt(v, "muml_runtime_overload"); ov > 0 {
		state = "   OVERLOADED"
	}
	fmt.Fprintf(b, "runtime   heap %s / goal %s   %d goroutines   %d gc   alloc %s/s%s\n",
		ibytes(heap), ibytes(goal), goroutines, gc, ibytes(rate), state)
	if line := levelSparkline(hist); line != "" {
		fmt.Fprintf(b, "heap      %s\n", line)
	}
	b.WriteString("\n")
}

// scalarInt looks up a parsed /metrics sample as an integer.
func scalarInt(v *metricsView, name string) (int64, bool) {
	raw, ok := v.scalars[name]
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// levelSparkline renders a series of absolute levels (heap history)
// scaled against its maximum; fewer than two points render nothing.
func levelSparkline(hist []int64) string {
	if len(hist) < 2 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var max int64
	for _, v := range hist {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range hist {
		if v < 0 {
			v = 0
		}
		b.WriteRune(levels[int(v*int64(len(levels)-1)/max)])
	}
	return b.String()
}

// ibytes renders a byte count with binary units for the runtime panel.
func ibytes(v int64) string {
	const unit = 1024
	if v < unit {
		return fmt.Sprintf("%dB", v)
	}
	div, exp := int64(unit), 0
	for n := v / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(v)/float64(div), "KMGTPE"[exp])
}

func renderHistograms(b *strings.Builder, v *metricsView) {
	if len(v.histograms) == 0 {
		return
	}
	fmt.Fprintf(b, "phase latencies\n")
	width := 0
	for _, fam := range sortedKeys(v.histograms) {
		if len(fam) > width {
			width = len(fam)
		}
	}
	for _, fam := range sortedKeys(v.histograms) {
		h := v.histograms[fam]
		fmt.Fprintf(b, "  %-*s %8d obs  p50≤%-9s p90≤%-9s p99≤%-9s %s\n",
			width, strings.TrimSuffix(fam, "_ns"), h.count,
			dur(obs.HistogramQuantile(h.buckets, 50)),
			dur(obs.HistogramQuantile(h.buckets, 90)),
			dur(obs.HistogramQuantile(h.buckets, 99)),
			sparkline(h.buckets))
	}
	b.WriteString("\n")
}

func renderCounters(b *strings.Builder, v *metricsView) {
	if len(v.scalars) == 0 {
		return
	}
	fmt.Fprintf(b, "counters\n")
	for _, name := range sortedKeys(v.scalars) {
		fmt.Fprintf(b, "  %-40s %s\n", name, v.scalars[name])
	}
	b.WriteString("\n")
}

func renderEvents(b *strings.Builder, events []obs.Event, tailN int, streamed bool, tail *eventTail) {
	if tailN == 0 {
		return
	}
	source := "journal tail"
	if streamed {
		source = "live /events"
	}
	fmt.Fprintf(b, "recent events (%s)\n", source)
	if streamed && tail != nil && !tail.connected() {
		fmt.Fprintf(b, "  (stream disconnected, reconnecting…)\n")
	}
	if len(events) == 0 {
		fmt.Fprintf(b, "  (none yet)\n")
		return
	}
	for _, e := range events {
		fmt.Fprintf(b, "  %6d  %-20s %s\n", e.Seq, e.Kind, eventDetail(e))
	}
}

// eventDetail compresses an event's payload into one line: string fields
// first (traces elided), then integer fields, then the duration.
func eventDetail(e obs.Event) string {
	var parts []string
	for _, k := range sortedKeys(e.S) {
		val := e.S[k]
		if k == "trace" || strings.Contains(val, "\n") {
			continue // multi-line paper listings don't fit a dashboard row
		}
		if len(val) > 32 {
			val = val[:29] + "…"
		}
		parts = append(parts, k+"="+val)
	}
	for _, k := range sortedKeys(e.N) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, e.N[k]))
	}
	if e.DurNS > 0 {
		parts = append(parts, "dur="+dur(e.DurNS))
	}
	return strings.Join(parts, " ")
}

// sparkline renders per-bucket counts between the first and last occupied
// bucket, scaled to eight levels.
func sparkline(buckets []int64) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := -1, -1
	var max int64
	for i, c := range buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > max {
				max = c
			}
		}
	}
	if lo < 0 {
		return ""
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		if buckets[i] == 0 {
			b.WriteRune(' ')
			continue
		}
		idx := int((buckets[i]*int64(len(levels)) - 1) / max)
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// --- live event stream ---

// eventTail is the client-side ring fed by the /events stream.
type eventTail struct {
	mu   sync.Mutex
	buf  []obs.Event
	up   bool
	size int
}

func newEventTail(n int) *eventTail {
	if n < 1 {
		n = 1
	}
	return &eventTail{size: n}
}

func (t *eventTail) push(e obs.Event) {
	t.mu.Lock()
	t.buf = append(t.buf, e)
	if len(t.buf) > t.size {
		t.buf = t.buf[len(t.buf)-t.size:]
	}
	t.mu.Unlock()
}

func (t *eventTail) snapshot() []obs.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]obs.Event(nil), t.buf...)
}

func (t *eventTail) setConnected(up bool) {
	t.mu.Lock()
	t.up = up
	t.mu.Unlock()
}

func (t *eventTail) connected() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.up
}

// streamEvents consumes the SSE stream into the tail, reconnecting after
// dropped or failed connections until the context ends. The server
// replays recent history on each (re)connect, so a reconnect repaints
// the panel rather than leaving a gap.
func streamEvents(ctx context.Context, base string, tail *eventTail, retry time.Duration) {
	for ctx.Err() == nil {
		streamOnce(ctx, base, tail)
		tail.setConnected(false)
		select {
		case <-ctx.Done():
		case <-time.After(retry):
		}
	}
}

func streamOnce(ctx context.Context, base string, tail *eventTail) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/events", nil)
	if err != nil {
		return
	}
	// Plain transport, not the polling client: the stream is long-lived
	// by design and must not be cut by the snapshot timeout. The request
	// context still tears it down on exit.
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return
	}
	defer resp.Body.Close()
	tail.setConnected(true)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		data, ok := strings.CutPrefix(strings.TrimSpace(sc.Text()), "data:")
		if !ok {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(strings.TrimSpace(data)), &e); err == nil {
			tail.push(e)
		}
	}
}

// --- small helpers ---

func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func num(m map[string]any, key string) string {
	if v, ok := m[key]; ok {
		return fmt.Sprintf("%.0f", toFloat(v))
	}
	return "?"
}

func intField(m map[string]any, key string) int64 {
	return int64(toFloat(m[key]))
}

func durField(m map[string]any, key string) string {
	return dur(int64(toFloat(m[key])))
}

func toFloat(v any) float64 {
	f, _ := v.(float64) // encoding/json decodes numbers as float64
	return f
}

func dur(ns int64) string {
	if ns <= 0 {
		return "—"
	}
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(time.Nanosecond).String()
}
