package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validJournal = `{"seq":1,"kind":"iteration_start","iter":0}
{"seq":2,"kind":"check_result","iter":0}
{"seq":3,"kind":"verdict","iter":0}
`

func TestRunValidJournalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(validJournal), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf strings.Builder
	if code := run([]string{path}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "3 events ok") {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

func TestRunValidJournalFromStdin(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-"}, strings.NewReader(validJournal), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "-: 3 events ok") {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

func TestRunCorruptedJournal(t *testing.T) {
	// A duplicated sequence number and a trailing garbage line must both
	// fail with the data exit code.
	for name, content := range map[string]string{
		"dup-seq": `{"seq":1,"kind":"note","iter":-1}` + "\n" + `{"seq":1,"kind":"note","iter":-1}` + "\n",
		"garbage": validJournal + "not json\n",
	} {
		path := filepath.Join(t.TempDir(), name+".jsonl")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errBuf strings.Builder
		if code := run([]string{path}, nil, &out, &errBuf); code != 1 {
			t.Errorf("%s: exit %d, want 1", name, code)
		}
		if !strings.Contains(errBuf.String(), "obscheck:") {
			t.Errorf("%s: missing diagnostic, stderr: %q", name, errBuf.String())
		}
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{filepath.Join(t.TempDir(), "absent.jsonl")}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"a.jsonl", "b.jsonl"},
		{"-no-such-flag"},
	} {
		var out, errBuf strings.Builder
		if code := run(args, nil, &out, &errBuf); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestRunReportsFirstViolatingSeq(t *testing.T) {
	// A broken span tree (the parent span was never opened) must report
	// the sequence number of the first violating event.
	journal := `{"seq":1,"kind":"iteration_start","iter":0,"trace":"r","span":1}` + "\n" +
		`{"seq":2,"kind":"check_result","iter":0,"trace":"r","parent":1}` + "\n" +
		`{"seq":3,"kind":"replay_step","iter":0,"trace":"r","parent":7}` + "\n"
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf strings.Builder
	if code := run([]string{path}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "seq 3") {
		t.Errorf("diagnostic does not name the violating seq: %q", errBuf.String())
	}
}
