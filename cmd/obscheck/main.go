// Command obscheck validates a structured run journal written with
// -journal: every line must be a well-formed event of a known kind with
// strictly increasing sequence numbers, and the causal-trace invariants
// must hold — span IDs unique, parents opened by earlier events, the
// trace ID constant within a span tree, timestamps never running
// backwards (DESIGN.md §10). It prints the event count on success and
// exits non-zero on the first malformed line, naming the violating
// event's sequence number.
//
// Usage:
//
//	obscheck run.jsonl
//	legint -journal /dev/stdout ... | obscheck -
//
// Exit codes: 0 on success, 1 on a missing or malformed journal, 2 on a
// usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"muml/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: obscheck <journal.jsonl | ->")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	var r io.Reader
	name := fs.Arg(0)
	if name == "-" {
		r = stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		r = f
	}
	n, err := obs.ValidateJSONL(r)
	if err != nil {
		fmt.Fprintf(stderr, "obscheck: %s: %v\n", name, err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d events ok\n", name, n)
	return 0
}
