// Command obscheck validates a structured run journal written with
// -journal: every line must be a well-formed event of a known kind with
// strictly increasing sequence numbers. It prints the event count on
// success and exits non-zero on the first malformed line.
//
// Usage:
//
//	obscheck run.jsonl
//	legint -journal /dev/stdout ... | obscheck -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"muml/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: obscheck <journal.jsonl | ->")
	}
	var r io.Reader
	name := flag.Arg(0)
	if name == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	n, err := obs.ValidateJSONL(r)
	if err != nil {
		return fmt.Errorf("obscheck: %s: %w", name, err)
	}
	fmt.Printf("%s: %d events ok\n", name, n)
	return nil
}
