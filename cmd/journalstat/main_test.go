package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "testdata/batch.jsonl"

// TestGoldenText pins the default text report over the committed batch
// fixture. Regenerate with OBS_UPDATE_GOLDEN=1 go test ./cmd/journalstat.
func TestGoldenText(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{fixture}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}

	golden := filepath.Join("testdata", "batch.golden")
	if os.Getenv("OBS_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("report diverged from %s\ngot:\n%swant:\n%s", golden, out.Bytes(), want)
	}
	// The build identity annotates the text report on stderr (kept off
	// stdout so the golden is toolchain-independent), matching the
	// muml_build_info gauge on /metrics.
	if !strings.Contains(errBuf.String(), "muml_build_info: version=") {
		t.Errorf("stderr misses the build-info line: %q", errBuf.String())
	}
}

func TestJSONFormat(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-format", "json", fixture}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var stats struct {
		Events   int            `json:"events"`
		Traces   int            `json:"traces"`
		Verdicts map[string]int `json:"verdicts"`
		Phases   map[string]struct {
			Count   int64 `json:"count"`
			TotalNS int64 `json:"total_ns"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(out.Bytes(), &stats); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if stats.Events != 16 || stats.Traces != 2 {
		t.Errorf("events=%d traces=%d", stats.Events, stats.Traces)
	}
	if stats.Phases["check"].TotalNS != 4000000 || stats.Phases["compose"].Count != 2 {
		t.Errorf("phases %+v", stats.Phases)
	}
	if stats.Verdicts["proven"] != 2 || stats.Verdicts["violation"] != 1 || stats.Verdicts["error"] != 1 {
		t.Errorf("verdicts %v", stats.Verdicts)
	}
}

func TestTopKBoundsSlowest(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-top", "1", fixture}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "alpha") || strings.Contains(out.String(), "beta") {
		t.Errorf("-top 1 should keep only the slowest instance:\n%s", out.String())
	}
}

func TestDiffMode(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-diff", fixture, fixture}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"baseline:", "candidate:", "1.00x", "verdicts (unchanged)", "events: 16→16"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff output misses %q:\n%s", want, out.String())
		}
	}
}

func TestTraceExport(t *testing.T) {
	traceOut := filepath.Join(t.TempDir(), "trace.json")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-trace", traceOut, fixture}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace export is empty")
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // no journals
		{"-format", "xml", fixture},          // unknown format
		{"-diff", fixture},                   // diff needs two
		{"-diff", fixture, fixture, fixture}, // diff takes exactly two
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"testdata/absent.jsonl"}, &out, &errBuf); code != 1 {
		t.Errorf("missing journal: exit %d, want 1", code)
	}
}
