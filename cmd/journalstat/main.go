// Command journalstat aggregates structured run journals (JSONL, as
// written by -journal on legint, batchverify, mbt, and experiments) into
// per-phase latency distributions (p50/p90/p99), event counts, verdict
// tallies, and the top-k slowest batch instances — the offline half of
// the observability plane. It also exports journals as Chrome
// trace-event JSON for chrome://tracing / Perfetto, and diffs two
// journals for regression triage.
//
//	journalstat run.jsonl
//	journalstat -format json run.jsonl more.jsonl
//	journalstat -top 10 batch.jsonl
//	journalstat -cost batch.jsonl              # cost ledger: top-k by cpu/alloc
//	journalstat -diff before.jsonl after.jsonl
//	journalstat -trace trace.json run.jsonl    # load trace.json in Perfetto
//
// Multiple journals aggregate into one report (the diff mode takes
// exactly two). Exit codes: 0 on success, 1 on a missing or malformed
// journal, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"muml/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("journalstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format   = fs.String("format", "text", "output format: text or json")
		topK     = fs.Int("top", 5, "number of slowest instances to report")
		diff     = fs.Bool("diff", false, "compare exactly two journals (baseline, candidate)")
		cost     = fs.Bool("cost", false, "append the cost-ledger report (totals plus top-k instances by cpu and allocation)")
		traceOut = fs.String("trace", "", "write a Chrome trace-event JSON export to this file")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: journalstat [-format text|json] [-top k] [-cost] [-trace out.json] <journal.jsonl>...")
		fmt.Fprintln(stderr, "       journalstat -diff <baseline.jsonl> <candidate.jsonl>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "journalstat: unknown format %q\n", *format)
		return 2
	}
	if *diff && fs.NArg() != 2 {
		fmt.Fprintln(stderr, "journalstat: -diff takes exactly two journals")
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	journals := make([][]obs.Event, fs.NArg())
	for i, name := range fs.Args() {
		events, err := decodeFile(name)
		if err != nil {
			fmt.Fprintf(stderr, "journalstat: %s: %v\n", name, err)
			return 1
		}
		journals[i] = events
	}

	if *diff {
		a := obs.Analyze(journals[0], *topK)
		b := obs.Analyze(journals[1], *topK)
		fmt.Fprintf(stdout, "baseline:  %s\ncandidate: %s\n\n", fs.Arg(0), fs.Arg(1))
		obs.DiffText(stdout, a, b)
		return 0
	}

	var all []obs.Event
	for _, events := range journals {
		all = append(all, events...)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "journalstat: %v\n", err)
			return 1
		}
		err = obs.WriteChromeTrace(f, all)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "journalstat: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "chrome trace written to %s\n", *traceOut)
	}

	stats := obs.Analyze(all, *topK)
	if *format == "json" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			fmt.Fprintf(stderr, "journalstat: %v\n", err)
			return 1
		}
		return 0
	}
	// The build identity goes to stderr: it annotates the report without
	// making stdout depend on the toolchain that built the binary.
	fmt.Fprintln(stderr, obs.BuildInfoLine())
	stats.RenderText(stdout)
	if *cost {
		fmt.Fprintln(stdout)
		stats.Cost.RenderCost(stdout)
	}
	return 0
}

func decodeFile(name string) ([]obs.Event, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.DecodeJSONL(f)
}
