// Command verifyd is the verification job service: batchverify promoted
// from a one-shot CLI to a long-running HTTP/JSON server with a
// persistent warm-start memo store.
//
//	verifyd -addr 127.0.0.1:8479 -store /var/lib/verifyd/store
//
// Jobs are submitted over HTTP and drained through a bounded queue into
// the internal/batch range-stealing pool:
//
//	POST /jobs                 submit {"manifest": "...JSONL..."} or
//	                           {"gen": {"seed":1,"n":64}} or
//	                           {"scenarios": true}; a non-JSON body is
//	                           taken as the raw manifest JSONL, with
//	                           workers/deadline_ms/shard_index/shard_count
//	                           as query parameters
//	GET  /jobs                 list all jobs
//	GET  /jobs/{id}            status, live progress, memo/store hit deltas
//	GET  /jobs/{id}/verdicts   deterministic per-instance verdicts (NDJSON,
//	                           sorted by name)
//	GET  /jobs/{id}/journal    the job's JSONL batch journal
//
// plus the live observability plane shared with the CLIs: /metrics
// (Prometheus, including the muml_store_* and muml_runtime_* families),
// /progress, /events (SSE), /journal/tail, /healthz, /readyz, and
// /debug/pprof. /healthz is pure liveness; /readyz answers 503 while the
// server is draining or the admission controller is overloaded.
//
// A runtime/metrics sampler (-sample-interval) journals resource_sample
// events and feeds the hysteretic overload controller: at or above
// -heap-high-bytes of live heap, or with the job queue at capacity,
// intake answers 503 + Retry-After and /readyz fails until the pressure
// falls back below the low watermarks. Every job accumulates a cost
// ledger (CPU seconds, attributed allocation, peak product states, CTL
// words scanned, memo savings) served in /jobs/{id} and journaled as a
// cost_report event.
//
// The -store directory is the content-addressed persistent memo store
// (internal/memostore), layered under the in-memory closure/product cache
// and keyed by structural fingerprints: overlapping jobs, process
// restarts, and sibling verifyd processes sharing the directory
// warm-start constructions instead of recomputing them. Shard one job
// across N processes by submitting it N times with shard_count=N and
// shard_index=0..N-1 — the name-hash partition is deterministic, and
// merging the shards' verdict documents (they are disjoint) reproduces
// the unsharded job's verdicts exactly.
//
// SIGINT/SIGTERM drain gracefully: intake stops (new submissions get
// 503), queued jobs are canceled, the in-flight job finishes, the store
// and journal are flushed, and the process exits 0. A second signal
// hard-cancels the in-flight job.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"muml/internal/automata"
	"muml/internal/memostore"
	"muml/internal/obs"
	"muml/internal/obs/httpd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("verifyd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8479", "listen address of the job API and observability plane")
		storeDir      = fs.String("store", "", "persistent memo-store directory (empty = in-memory cache only)")
		storeMaxBytes = fs.Int64("store-max-bytes", memostore.DefaultMaxBytes, "on-disk store size cap in payload bytes (negative = unbounded)")
		spool         = fs.String("spool", "", "per-job journal directory (default: <store>/jobs, or a temp dir without -store)")
		queueCap      = fs.Int("queue", 16, "bounded job-queue capacity; submissions beyond it get 503")
		workers       = fs.Int("workers", 0, "default worker-pool size per job (0 = GOMAXPROCS)")
		deadline      = fs.Duration("deadline", 0, "default per-instance deadline (0 = unbounded)")
		journal       = fs.String("journal", "", "write the server event journal (job lifecycle, cache and store events) to this file")
		sampleEvery   = fs.Duration("sample-interval", obs.DefaultSampleInterval, "runtime resource sampling period (0 disables the sampler and heap-based overload)")
		heapHigh      = fs.Int64("heap-high-bytes", 0, "live-heap high watermark: at or above it, intake sheds load with 503 until heap-low-bytes (0 = no heap watermark)")
		heapLow       = fs.Int64("heap-low-bytes", 0, "live-heap low watermark ending heap overload (default: heap-high-bytes)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "verifyd: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}

	obsRun, err := obs.OpenRun(obs.RunOptions{JournalPath: *journal, Metrics: true, RingSize: obs.DefaultRingSize})
	if err != nil {
		fmt.Fprintf(stderr, "verifyd: %v\n", err)
		return 1
	}
	defer obsRun.Close()

	var store *memostore.Store
	if *storeDir != "" {
		store, err = memostore.Open(*storeDir, memostore.Options{
			MaxBytes: *storeMaxBytes,
			Journal:  obsRun.Journal,
			Metrics:  obsRun.Registry,
		})
		if err != nil {
			fmt.Fprintf(stderr, "verifyd: %v\n", err)
			return 1
		}
		defer store.Close()
	}

	spoolDir := *spool
	if spoolDir == "" {
		if *storeDir != "" {
			spoolDir = filepath.Join(*storeDir, "jobs")
		} else {
			spoolDir, err = os.MkdirTemp("", "verifyd-spool-*")
			if err != nil {
				fmt.Fprintf(stderr, "verifyd: %v\n", err)
				return 1
			}
		}
	}
	if err := os.MkdirAll(spoolDir, 0o755); err != nil {
		fmt.Fprintf(stderr, "verifyd: %v\n", err)
		return 1
	}

	memo := automata.NewMemoCache(obsRun.Journal)
	if store != nil {
		memo.SetBackend(store)
	}

	// The admission controller sheds load before memory pressure kills the
	// process: the heap watermarks come from flags, the queue watermarks
	// from the queue capacity (enter at a full queue, exit at half).
	overload := obs.NewOverload(obs.OverloadOptions{
		HeapHighBytes: *heapHigh,
		HeapLowBytes:  *heapLow,
		QueueHigh:     *queueCap,
		QueueLow:      *queueCap / 2,
		Journal:       obsRun.Journal,
		Registry:      obsRun.Registry,
	})

	srv := newServer(serverConfig{
		Workers:  *workers,
		Deadline: *deadline,
		Spool:    spoolDir,
		QueueCap: *queueCap,
		Memo:     memo,
		Store:    store,
		Journal:  obsRun.Journal,
		Registry: obsRun.Registry,
		Overload: overload,
	})

	if *sampleEvery > 0 {
		sampler := obs.StartRuntimeSampler(obs.RuntimeSamplerOptions{
			Interval: *sampleEvery,
			Journal:  obsRun.Journal,
			Registry: obsRun.Registry,
			OnSample: func(s obs.ResourceSample) {
				overload.ObserveHeap(s.HeapLiveBytes)
				overload.ObserveQueue(srv.queueDepth())
			},
		})
		defer sampler.Stop()
	}

	httpSrv, err := httpd.Start(*addr, httpd.Options{
		Registry: obsRun.Registry,
		Progress: srv.progressSnapshot,
		Events:   obsRun.Ring,
		Extra:    srv.mux(),
		Ready:    srv.ready,
	})
	if err != nil {
		fmt.Fprintf(stderr, "verifyd: %v\n", err)
		return 1
	}
	defer httpSrv.Close()
	fmt.Fprintf(stderr, "verifyd: serving job API and /metrics /progress /events /healthz /readyz on http://%s\n", httpSrv.Addr())
	if store != nil {
		_, _, _, entries, bytes := store.Stats()
		fmt.Fprintf(stderr, "verifyd: memo store %s: %d records, %d payload bytes\n", store.Dir(), entries, bytes)
	}

	// First signal: drain — stop intake, cancel queued jobs, finish the
	// in-flight one. Second signal: hard-cancel the in-flight job too.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintf(stderr, "verifyd: draining (signal again to cancel the running job)\n")
		srv.beginDrain()
		<-sig
		fmt.Fprintf(stderr, "verifyd: canceling the running job\n")
		srv.hardCancel()
	}()

	srv.wait()

	hits, misses, _ := memo.Stats()
	fmt.Fprintf(stdout, "verifyd: drained: %d jobs done, memo %d hits / %d misses\n",
		srv.mDone.Value(), hits, misses)
	if store != nil {
		sh, sm, se, entries, bytes := store.Stats()
		fmt.Fprintf(stdout, "verifyd: store: %d hits, %d misses, %d evictions, %d records, %d bytes\n",
			sh, sm, se, entries, bytes)
	}
	return 0
}
