package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"muml/internal/automata"
	"muml/internal/batch"
	"muml/internal/core"
	"muml/internal/gen"
	"muml/internal/memostore"
	"muml/internal/obs"
)

// jobState is the lifecycle of one submitted job.
type jobState string

const (
	stateQueued   jobState = "queued"
	stateRunning  jobState = "running"
	stateDone     jobState = "done"
	stateFailed   jobState = "failed"
	stateCanceled jobState = "canceled"
)

// jobRequest is the JSON envelope of POST /jobs. Exactly one instance
// source — Manifest, Gen, or Scenarios — must be set. Alternatively the
// manifest JSONL may be posted directly as the request body (any
// non-application/json content type), with the remaining fields as query
// parameters.
type jobRequest struct {
	// Manifest is the JSONL manifest text (batch.ManifestItems syntax).
	Manifest string `json:"manifest,omitempty"`
	// Gen describes a seeded generator range.
	Gen *genSpec `json:"gen,omitempty"`
	// Scenarios selects the railroad-crossing example scenarios.
	Scenarios bool `json:"scenarios,omitempty"`
	// Workers overrides the server's worker-pool size for this job.
	Workers int `json:"workers,omitempty"`
	// DeadlineMS bounds each instance (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// ShardIndex/ShardCount select a name-hash shard of the job, so N
	// processes sharing a store directory can split it (batch.ShardItems).
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
}

type genSpec struct {
	Seed      int64  `json:"seed"`
	N         int    `json:"n"`
	Config    string `json:"config,omitempty"` // "default" or "wide"
	MaxStates int    `json:"max_states,omitempty"`
}

// verdictLine is one instance's outcome as served by /jobs/{id}/verdicts:
// only the deterministic fields (no durations, workers, or indices), so
// the rendered document is byte-identical across runs, worker counts, and
// — once shards are merged and sorted — shard counts.
type verdictLine struct {
	Name       string       `json:"name"`
	Verdict    string       `json:"verdict,omitempty"`
	Kind       string       `json:"kind,omitempty"`
	Iterations int          `json:"iterations,omitempty"`
	Error      string       `json:"error,omitempty"`
	Cost       *verdictCost `json:"cost,omitempty"`
}

// verdictCost is the deterministic subset of an instance's cost ledger —
// the effort figures that are identical across worker counts and
// warm-starts (DESIGN.md §15), so they can live inside the byte-identity
// contract of the verdict document. The measured figures (CPU, bytes)
// are served only by /jobs/{id} and the cost_report journal event.
type verdictCost struct {
	PeakStates int64 `json:"peak_states"`
	CTLWords   int64 `json:"ctl_words"`
}

// job is one submitted verification job.
type job struct {
	mu        sync.Mutex
	id        string
	source    string
	shard     string // "index/count" when sharded
	items     []batch.Item
	workers   int
	deadline  time.Duration
	state     jobState
	errText   string
	submitted time.Time
	finished  time.Time
	progress  *batch.Progress
	summary   *batch.Summary
	verdicts  []verdictLine

	memoHits, memoMisses   int64
	storeHits, storeMisses int64

	journalPath string
}

// jobStatus is the GET /jobs/{id} document.
type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Source    string `json:"source"`
	Shard     string `json:"shard,omitempty"`
	Instances int    `json:"instances"`
	Error     string `json:"error,omitempty"`

	SubmittedUnixNS int64 `json:"submitted_unix_ns"`
	DurationNS      int64 `json:"duration_ns,omitempty"`

	Progress *batch.ProgressSnapshot `json:"progress,omitempty"`

	Proven     int `json:"proven"`
	Violations int `json:"violations"`
	Errored    int `json:"errored"`
	TimedOut   int `json:"timed_out"`

	MemoHits    int64   `json:"memo_hits"`
	MemoMisses  int64   `json:"memo_misses"`
	MemoHitRate float64 `json:"memo_hit_rate"`
	StoreHits   int64   `json:"store_hits"`
	StoreMisses int64   `json:"store_misses"`

	// Cost is the job's full resource ledger — the exact sum of its
	// instance ledgers (batch.Summary.Cost).
	Cost *batch.Cost `json:"cost,omitempty"`
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:              j.id,
		State:           string(j.state),
		Source:          j.source,
		Shard:           j.shard,
		Instances:       len(j.items),
		Error:           j.errText,
		SubmittedUnixNS: j.submitted.UnixNano(),
		MemoHits:        j.memoHits,
		MemoMisses:      j.memoMisses,
		StoreHits:       j.storeHits,
		StoreMisses:     j.storeMisses,
	}
	if !j.finished.IsZero() {
		st.DurationNS = j.finished.Sub(j.submitted).Nanoseconds()
	}
	if j.state == stateRunning || j.state == stateDone {
		snap := j.progress.Snapshot()
		st.Progress = &snap
	}
	if j.summary != nil {
		st.Proven = j.summary.Proven
		st.Violations = j.summary.Violations
		st.Errored = j.summary.Errored
		st.TimedOut = j.summary.TimedOut
		cost := j.summary.Cost
		st.Cost = &cost
	}
	if total := j.memoHits + j.memoMisses; total > 0 {
		st.MemoHitRate = float64(j.memoHits) / float64(total)
	}
	return st
}

// server is the verifyd job service: a bounded queue of jobs drained by a
// single runner goroutine into batch.Verify over a shared memo cache
// backed by the persistent store. One job runs at a time — parallelism
// lives inside the batch pool — so per-job memo deltas are exact.
type server struct {
	workers  int
	deadline time.Duration
	spool    string

	memo     *automata.MemoCache
	store    *memostore.Store
	journal  *obs.Journal
	registry *obs.Registry
	overload *obs.Overload

	queue    chan *job
	draining atomic.Bool
	drainC   chan struct{}
	doneC    chan struct{}
	drain1   sync.Once

	runMu     sync.Mutex
	runCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int

	mSubmitted, mDone, mRejected *obs.Counter
}

// serverConfig wires a server; every field except memo is optional.
type serverConfig struct {
	Workers  int
	Deadline time.Duration
	Spool    string
	QueueCap int
	Memo     *automata.MemoCache
	Store    *memostore.Store
	Journal  *obs.Journal
	Registry *obs.Registry
	// Overload, when non-nil, gates job intake: while active, POST /jobs
	// answers 503 + Retry-After and /readyz fails (obs.Overload).
	Overload *obs.Overload
}

func newServer(cfg serverConfig) *server {
	cap := cfg.QueueCap
	if cap <= 0 {
		cap = 16
	}
	s := &server{
		workers:    cfg.Workers,
		deadline:   cfg.Deadline,
		spool:      cfg.Spool,
		memo:       cfg.Memo,
		store:      cfg.Store,
		journal:    cfg.Journal,
		registry:   cfg.Registry,
		overload:   cfg.Overload,
		queue:      make(chan *job, cap),
		drainC:     make(chan struct{}),
		doneC:      make(chan struct{}),
		jobs:       make(map[string]*job),
		mSubmitted: cfg.Registry.Counter("verifyd.jobs_submitted"),
		mDone:      cfg.Registry.Counter("verifyd.jobs_done"),
		mRejected:  cfg.Registry.Counter("verifyd.jobs_rejected"),
	}
	go s.runLoop()
	return s
}

// beginDrain stops job intake: new submissions are rejected, queued jobs
// are canceled, and the runner exits once the in-flight job (if any)
// finishes. Idempotent.
func (s *server) beginDrain() {
	s.drain1.Do(func() {
		s.draining.Store(true)
		close(s.drainC)
	})
}

// hardCancel additionally aborts the in-flight job's batch context;
// running instances unwind through the cancellation path and report as
// timed out/canceled.
func (s *server) hardCancel() {
	s.beginDrain()
	s.runMu.Lock()
	if s.runCancel != nil {
		s.runCancel()
	}
	s.runMu.Unlock()
}

// wait blocks until the runner has drained (every accepted job reached a
// terminal state).
func (s *server) wait() { <-s.doneC }

// queueDepth reports the number of queued (not yet running) jobs — the
// signal the overload controller watches between samples.
func (s *server) queueDepth() int { return len(s.queue) }

// ready backs the /readyz probe: the server wants traffic unless it is
// draining or the admission controller has latched overload.
func (s *server) ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if active, reason := s.overload.Active(); active {
		return false, "overloaded: " + reason
	}
	return true, ""
}

func (s *server) runLoop() {
	defer close(s.doneC)
	for {
		select {
		case j := <-s.queue:
			s.overload.ObserveQueue(len(s.queue))
			if s.draining.Load() {
				s.finishCanceled(j, "server draining")
				continue
			}
			s.runJob(j)
			s.overload.ObserveQueue(len(s.queue))
		case <-s.drainC:
			for {
				select {
				case j := <-s.queue:
					s.finishCanceled(j, "server draining")
				default:
					return
				}
			}
		}
	}
}

func (s *server) finishCanceled(j *job, reason string) {
	j.mu.Lock()
	j.state = stateCanceled
	j.errText = reason
	j.finished = time.Now()
	j.mu.Unlock()
	s.emitJobDone(j)
}

func (s *server) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	s.runMu.Lock()
	s.runCancel = cancel
	s.runMu.Unlock()
	defer func() {
		s.runMu.Lock()
		s.runCancel = nil
		s.runMu.Unlock()
		cancel()
	}()

	memoHits0, memoMisses0, _ := s.memo.Stats()
	storeHits0, storeMisses0, _, _, _ := s.store.Stats()

	j.mu.Lock()
	j.state = stateRunning
	workers, deadline, items := j.workers, j.deadline, j.items
	j.mu.Unlock()

	// Each job journals its batch events into its own spool file, served
	// back by GET /jobs/{id}/journal; cache and store events go to the
	// server journal the memo surfaces were built over.
	var jobJournal *obs.Journal
	var journalPath string
	if s.spool != "" {
		path := filepath.Join(s.spool, j.id+".jsonl")
		if run, err := obs.OpenRun(obs.RunOptions{JournalPath: path}); err == nil {
			jobJournal = run.Journal
			journalPath = path
			defer run.Close()
		}
	}

	sum, err := batch.Verify(items, batch.Options{
		Workers:  workers,
		Deadline: deadline,
		Context:  ctx,
		Memo:     s.memo,
		Journal:  jobJournal,
		Metrics:  s.registry,
		Progress: j.progress,
	})

	memoHits1, memoMisses1, _ := s.memo.Stats()
	storeHits1, storeMisses1, _, _, _ := s.store.Stats()

	j.mu.Lock()
	j.finished = time.Now()
	j.journalPath = journalPath
	j.memoHits = memoHits1 - memoHits0
	j.memoMisses = memoMisses1 - memoMisses0
	j.storeHits = storeHits1 - storeHits0
	j.storeMisses = storeMisses1 - storeMisses0
	switch {
	case err != nil:
		j.state = stateFailed
		j.errText = err.Error()
	case ctx.Err() != nil:
		j.state = stateCanceled
		j.errText = "canceled by shutdown"
		j.summary = sum
		j.verdicts = renderVerdicts(sum)
	default:
		j.state = stateDone
		j.summary = sum
		j.verdicts = renderVerdicts(sum)
	}
	j.mu.Unlock()
	s.emitJobDone(j)
}

// renderVerdicts projects a summary onto the deterministic verdict lines,
// sorted by instance name.
func renderVerdicts(sum *batch.Summary) []verdictLine {
	lines := make([]verdictLine, 0, len(sum.Results))
	for _, res := range sum.Results {
		line := verdictLine{Name: res.Name}
		if res.Err != nil {
			line.Error = res.Err.Error()
		} else {
			line.Verdict = res.Verdict.String()
			line.Iterations = res.Iterations
			if res.Verdict == core.VerdictViolation {
				line.Kind = res.Kind.String()
			}
			line.Cost = &verdictCost{
				PeakStates: res.Cost.PeakStates,
				CTLWords:   res.Cost.CTLWords,
			}
		}
		lines = append(lines, line)
	}
	sort.SliceStable(lines, func(i, k int) bool { return lines[i].Name < lines[k].Name })
	return lines
}

func (s *server) emitJobDone(j *job) {
	s.mDone.Add(1)
	if !s.journal.Enabled() {
		return
	}
	j.mu.Lock()
	e := obs.Event{Kind: obs.KindJobDone, Iter: -1,
		DurNS: j.finished.Sub(j.submitted).Nanoseconds(),
		S:     map[string]string{"job": j.id, "state": string(j.state)},
		N: map[string]int64{
			"instances":   int64(len(j.items)),
			"memo_hits":   j.memoHits,
			"memo_misses": j.memoMisses,
		},
	}
	if j.errText != "" {
		e.S["error"] = j.errText
	}
	var cost *obs.Event
	if j.summary != nil {
		e.N["proven"] = int64(j.summary.Proven)
		e.N["violations"] = int64(j.summary.Violations)
		e.N["errored"] = int64(j.summary.Errored)
		// The job's cost_report on the server journal mirrors the one
		// batch.Verify wrote into the job's spool journal, tagged with the
		// job id so journalstat -cost can attribute it.
		c := j.summary.Cost
		cost = &obs.Event{Kind: obs.KindCostReport, Iter: -1,
			DurNS: j.finished.Sub(j.submitted).Nanoseconds(),
			S:     map[string]string{"job": j.id},
			N: map[string]int64{
				"instances":   int64(len(j.summary.Results)),
				"cpu_ns":      c.CPUNS,
				"alloc_bytes": c.AllocBytes,
				"peak_states": c.PeakStates,
				"ctl_words":   c.CTLWords,
				"memo_hits":   c.MemoHits,
				"memo_misses": c.MemoMisses,
			}}
	}
	j.mu.Unlock()
	s.journal.Emit(e)
	if cost != nil {
		s.journal.Emit(*cost)
	}
}

// submit validates a request, builds its items, and enqueues the job.
func (s *server) submit(req jobRequest) (*job, int, error) {
	if s.draining.Load() {
		s.mRejected.Add(1)
		return nil, http.StatusServiceUnavailable, fmt.Errorf("verifyd: draining, not accepting jobs")
	}
	if active, reason := s.overload.Active(); active {
		s.mRejected.Add(1)
		return nil, http.StatusServiceUnavailable, fmt.Errorf("verifyd: overloaded (%s), retry later", reason)
	}
	sources := 0
	for _, set := range []bool{req.Manifest != "", req.Gen != nil, req.Scenarios} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, http.StatusBadRequest, fmt.Errorf("verifyd: exactly one of manifest, gen, scenarios required")
	}
	if req.DeadlineMS < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("verifyd: deadline_ms must be non-negative")
	}

	var items []batch.Item
	var source string
	switch {
	case req.Manifest != "":
		var err error
		items, err = batch.ManifestItems(strings.NewReader(req.Manifest))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		if len(items) == 0 {
			return nil, http.StatusBadRequest, fmt.Errorf("verifyd: manifest has no instances")
		}
		source = fmt.Sprintf("manifest(%d)", len(items))
	case req.Gen != nil:
		g := *req.Gen
		if g.N <= 0 {
			return nil, http.StatusBadRequest, fmt.Errorf("verifyd: gen.n must be positive")
		}
		var cfg gen.Config
		switch g.Config {
		case "", "default":
			cfg = gen.DefaultConfig()
		case "wide":
			cfg = gen.WideConfig()
		default:
			return nil, http.StatusBadRequest, fmt.Errorf("verifyd: unknown gen config %q", g.Config)
		}
		if g.MaxStates > 0 {
			cfg.MaxLegacyStates = g.MaxStates
			cfg.MaxContextStates = g.MaxStates
		}
		items = batch.GenItems(g.Seed, g.N, cfg)
		source = fmt.Sprintf("gen(seed=%d,n=%d)", g.Seed, g.N)
	default:
		items = batch.ScenarioItems()
		source = "scenarios"
	}

	shard := ""
	if req.ShardCount > 0 {
		var err error
		items, err = batch.ShardItems(items, req.ShardIndex, req.ShardCount)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		shard = fmt.Sprintf("%d/%d", req.ShardIndex, req.ShardCount)
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.workers
	}
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline == 0 {
		deadline = s.deadline
	}

	s.mu.Lock()
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.nextID),
		source:    source,
		shard:     shard,
		items:     items,
		workers:   workers,
		deadline:  deadline,
		state:     stateQueued,
		submitted: time.Now(),
		progress:  batch.NewProgress(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	select {
	case s.queue <- j:
		s.overload.ObserveQueue(len(s.queue))
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.mRejected.Add(1)
		return nil, http.StatusServiceUnavailable, fmt.Errorf("verifyd: job queue full (%d pending)", cap(s.queue))
	}

	s.mSubmitted.Add(1)
	if s.journal.Enabled() {
		e := obs.Event{Kind: obs.KindJobSubmitted, Iter: -1,
			S: map[string]string{"job": j.id, "source": source},
			N: map[string]int64{"instances": int64(len(items)), "queue_depth": int64(len(s.queue))},
		}
		if shard != "" {
			e.S["shard"] = shard
		}
		s.journal.Emit(e)
	}
	return j, http.StatusAccepted, nil
}

func (s *server) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// progressSnapshot is the /progress payload: job tallies, the in-flight
// job's batch progress, and the persistent-store counters.
type progressSnapshot struct {
	Queued   int  `json:"jobs_queued"`
	Running  int  `json:"jobs_running"`
	Done     int  `json:"jobs_done"`
	Failed   int  `json:"jobs_failed"`
	Canceled int  `json:"jobs_canceled"`
	Draining bool `json:"draining"`

	Overloaded     bool   `json:"overloaded"`
	OverloadReason string `json:"overload_reason,omitempty"`

	CurrentJob string                  `json:"current_job,omitempty"`
	Batch      *batch.ProgressSnapshot `json:"batch,omitempty"`

	MemoHits   int64 `json:"memo_hits"`
	MemoMisses int64 `json:"memo_misses"`

	StoreHits      int64 `json:"store_hits"`
	StoreMisses    int64 `json:"store_misses"`
	StoreEvictions int64 `json:"store_evictions"`
	StoreEntries   int   `json:"store_entries"`
	StoreBytes     int64 `json:"store_bytes"`
}

func (s *server) progressSnapshot() any {
	snap := progressSnapshot{Draining: s.draining.Load()}
	snap.Overloaded, snap.OverloadReason = s.overload.Active()
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	for _, id := range ids {
		j := s.get(id)
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case stateQueued:
			snap.Queued++
		case stateRunning:
			snap.Running++
			snap.CurrentJob = j.id
			b := j.progress.Snapshot()
			snap.Batch = &b
		case stateDone:
			snap.Done++
		case stateFailed:
			snap.Failed++
		case stateCanceled:
			snap.Canceled++
		}
	}
	snap.MemoHits, snap.MemoMisses, _ = s.memo.Stats()
	snap.StoreHits, snap.StoreMisses, snap.StoreEvictions, snap.StoreEntries, snap.StoreBytes = s.store.Stats()
	return snap
}

// mux returns the job API routes, mounted behind the shared httpd plane.
func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/verdicts", s.handleVerdicts)
	mux.HandleFunc("GET /jobs/{id}/journal", s.handleJournal)
	return mux
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("verifyd: bad request body: %v", err), http.StatusBadRequest)
			return
		}
	} else {
		// Raw manifest post: the body is the JSONL manifest, the knobs are
		// query parameters — the curl-friendly form.
		body, err := readManifestBody(r)
		if err != nil {
			http.Error(w, fmt.Sprintf("verifyd: reading body: %v", err), http.StatusBadRequest)
			return
		}
		req.Manifest = body
		q := r.URL.Query()
		if req.Workers, err = intParam(q.Get("workers"), 0); err != nil {
			http.Error(w, "verifyd: bad workers parameter", http.StatusBadRequest)
			return
		}
		if req.ShardIndex, err = intParam(q.Get("shard_index"), 0); err != nil {
			http.Error(w, "verifyd: bad shard_index parameter", http.StatusBadRequest)
			return
		}
		if req.ShardCount, err = intParam(q.Get("shard_count"), 0); err != nil {
			http.Error(w, "verifyd: bad shard_count parameter", http.StatusBadRequest)
			return
		}
		ms, err := intParam(q.Get("deadline_ms"), 0)
		if err != nil {
			http.Error(w, "verifyd: bad deadline_ms parameter", http.StatusBadRequest)
			return
		}
		req.DeadlineMS = int64(ms)
	}

	j, code, err := s.submit(req)
	if err != nil {
		if code == http.StatusServiceUnavailable {
			// Shed load politely: draining never recovers, but a full queue
			// or overload usually clears within a job's runtime.
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(j.status())
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := struct {
		Jobs     []jobStatus `json:"jobs"`
		Draining bool        `json:"draining"`
	}{Jobs: make([]jobStatus, 0, len(ids)), Draining: s.draining.Load()}
	for _, id := range ids {
		out.Jobs = append(out.Jobs, s.get(id).status())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.get(r.PathValue("id"))
	if j == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

func (s *server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	j := s.get(r.PathValue("id"))
	if j == nil {
		http.NotFound(w, r)
		return
	}
	j.mu.Lock()
	state := j.state
	lines := j.verdicts
	j.mu.Unlock()
	if state != stateDone && state != stateCanceled {
		http.Error(w, fmt.Sprintf("verifyd: job %s is %s, verdicts not available", j.id, state), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, line := range lines {
		enc.Encode(line)
	}
}

func (s *server) handleJournal(w http.ResponseWriter, r *http.Request) {
	j := s.get(r.PathValue("id"))
	if j == nil {
		http.NotFound(w, r)
		return
	}
	j.mu.Lock()
	path := j.journalPath
	j.mu.Unlock()
	if path == "" {
		http.Error(w, fmt.Sprintf("verifyd: job %s has no journal (yet)", j.id), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	http.ServeFile(w, r, path)
}

// maxBodyBytes bounds submitted manifests (64 MiB is ~1M instances).
const maxBodyBytes = 64 << 20

func readManifestBody(r *http.Request) (string, error) {
	data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return "", fmt.Errorf("manifest exceeds %d bytes", maxBodyBytes)
		}
		return "", err
	}
	return string(data), nil
}

func intParam(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}
