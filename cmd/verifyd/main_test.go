package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"muml/internal/automata"
	"muml/internal/memostore"
	"muml/internal/obs"
	"muml/internal/obs/httpd"
)

// testEnv is one in-process verifyd: the job server mounted on the shared
// httpd plane, exactly as cmd/verifyd wires it.
type testEnv struct {
	t     *testing.T
	srv   *server
	hs    *httpd.Server
	base  string
	memo  *automata.MemoCache
	store *memostore.Store
}

func startEnv(t *testing.T, storeDir string, queueCap int, mods ...func(*serverConfig)) *testEnv {
	t.Helper()
	memo := automata.NewMemoCache(nil)
	var store *memostore.Store
	if storeDir != "" {
		var err error
		store, err = memostore.Open(storeDir, memostore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		memo.SetBackend(store)
	}
	cfg := serverConfig{
		Workers:  2,
		Spool:    t.TempDir(),
		QueueCap: queueCap,
		Memo:     memo,
		Store:    store,
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	srv := newServer(cfg)
	hs, err := httpd.Start("127.0.0.1:0", httpd.Options{
		Progress: srv.progressSnapshot,
		Extra:    srv.mux(),
		Ready:    srv.ready,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &testEnv{t: t, srv: srv, hs: hs, base: "http://" + hs.Addr(), memo: memo, store: store}
	t.Cleanup(env.shutdown)
	return env
}

// shutdown drains the runner and closes everything; idempotent so tests may
// call it early to simulate a process exit.
func (e *testEnv) shutdown() {
	e.srv.beginDrain()
	e.srv.wait()
	e.hs.Close()
	e.store.Close()
}

func (e *testEnv) submitJSON(body string) (int, jobStatus) {
	e.t.Helper()
	resp, err := http.Post(e.base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			e.t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func (e *testEnv) getStatus(id string) jobStatus {
	e.t.Helper()
	resp, err := http.Get(e.base + "/jobs/" + id)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		e.t.Fatalf("GET /jobs/%s = %d", id, resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		e.t.Fatal(err)
	}
	return st
}

// waitState polls the job until it reaches a terminal state (or the wanted
// non-terminal one) and returns its status.
func (e *testEnv) waitState(id, want string) jobStatus {
	e.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := e.getStatus(id)
		switch st.State {
		case want, string(stateDone), string(stateFailed), string(stateCanceled):
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.t.Fatalf("job %s did not reach state %q in time", id, want)
	return jobStatus{}
}

func (e *testEnv) fetch(path string) (int, string) {
	e.t.Helper()
	resp, err := http.Get(e.base + path)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestVerifydJobLifecycle(t *testing.T) {
	env := startEnv(t, "", 4)

	code, st := env.submitJSON(`{"gen":{"seed":1,"n":8,"config":"wide"}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if st.Instances != 8 || st.State != string(stateQueued) && st.State != string(stateRunning) {
		t.Fatalf("submit status = %+v", st)
	}

	done := env.waitState(st.ID, string(stateDone))
	if done.State != string(stateDone) {
		t.Fatalf("job finished as %q (%s)", done.State, done.Error)
	}
	if done.Proven+done.Violations+done.Errored != 8 {
		t.Fatalf("verdict tally %d+%d+%d does not cover 8 instances",
			done.Proven, done.Violations, done.Errored)
	}

	code, verdicts := env.fetch("/jobs/" + st.ID + "/verdicts")
	if code != http.StatusOK {
		t.Fatalf("verdicts = %d, want 200", code)
	}
	lines := nonEmptyLines(verdicts)
	if len(lines) != 8 {
		t.Fatalf("verdicts = %d lines, want 8", len(lines))
	}
	if !sort.SliceIsSorted(lines, func(i, k int) bool { return nameOf(t, lines[i]) < nameOf(t, lines[k]) }) {
		t.Fatalf("verdict lines not sorted by name:\n%s", verdicts)
	}

	code, journal := env.fetch("/jobs/" + st.ID + "/journal")
	if code != http.StatusOK || len(nonEmptyLines(journal)) == 0 {
		t.Fatalf("journal = %d with %d lines, want a populated journal", code, len(nonEmptyLines(journal)))
	}

	code, list := env.fetch("/jobs")
	if code != http.StatusOK || !strings.Contains(list, st.ID) {
		t.Fatalf("job list = %d %q, want it to include %s", code, list, st.ID)
	}

	// The built-in plane wins over the Extra mux; unclaimed paths 404.
	if code, body := env.fetch("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _ := env.fetch("/nope"); code != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", code)
	}
	code, progress := env.fetch("/progress")
	if code != http.StatusOK || !strings.Contains(progress, `"jobs_done":1`) {
		t.Fatalf("progress = %d %q, want jobs_done 1", code, progress)
	}
	if code, _ := env.fetch("/jobs/no-such-job"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job, want 404")
	}
}

func TestVerifydRawManifestSubmit(t *testing.T) {
	env := startEnv(t, "", 4)
	resp, err := http.Post(env.base+"/jobs?workers=2", "text/plain",
		strings.NewReader("{\"seed\": 3}\n{\"seed\": 4, \"config\": \"wide\"}\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("raw manifest submit = %d: %s", resp.StatusCode, body)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Instances != 2 {
		t.Fatalf("instances = %d, want 2", st.Instances)
	}
	if done := env.waitState(st.ID, string(stateDone)); done.State != string(stateDone) {
		t.Fatalf("job finished as %q (%s)", done.State, done.Error)
	}
}

// TestVerifydShardMergeMatchesFull is the shard protocol's contract: the
// union of the shards' verdict documents is exactly the unsharded job's.
func TestVerifydShardMergeMatchesFull(t *testing.T) {
	env := startEnv(t, "", 4)

	full := env.runToDone(`{"gen":{"seed":5,"n":24,"config":"wide"}}`)
	_, fullV := env.fetch("/jobs/" + full + "/verdicts")

	var merged []string
	instances := 0
	for index := 0; index < 2; index++ {
		id := env.runToDone(fmt.Sprintf(`{"gen":{"seed":5,"n":24,"config":"wide"},"shard_index":%d,"shard_count":2}`, index))
		st := env.getStatus(id)
		instances += st.Instances
		_, v := env.fetch("/jobs/" + id + "/verdicts")
		merged = append(merged, nonEmptyLines(v)...)
	}
	if instances != 24 {
		t.Fatalf("shards cover %d instances, want 24", instances)
	}

	want := nonEmptyLines(fullV)
	sort.Strings(want)
	sort.Strings(merged)
	if strings.Join(merged, "\n") != strings.Join(want, "\n") {
		t.Fatalf("merged shard verdicts differ from the full job:\nmerged:\n%s\nfull:\n%s",
			strings.Join(merged, "\n"), strings.Join(want, "\n"))
	}
}

// runToDone submits and waits; fails the test on any non-done outcome.
func (e *testEnv) runToDone(body string) string {
	e.t.Helper()
	code, st := e.submitJSON(body)
	if code != http.StatusAccepted {
		e.t.Fatalf("submit %s = %d", body, code)
	}
	if done := e.waitState(st.ID, string(stateDone)); done.State != string(stateDone) {
		e.t.Fatalf("job %s finished as %q (%s)", st.ID, done.State, done.Error)
	}
	return st.ID
}

// TestVerifydRestartWarmStart is the acceptance scenario at the Go level:
// a second verifyd over the same store directory answers the identical job
// with strictly more memo hits and byte-identical verdicts.
func TestVerifydRestartWarmStart(t *testing.T) {
	storeDir := t.TempDir()
	const jobBody = `{"gen":{"seed":9,"n":16,"config":"wide"}}`

	env1 := startEnv(t, storeDir, 4)
	id1 := env1.runToDone(jobBody)
	st1 := env1.getStatus(id1)
	_, verdicts1 := env1.fetch("/jobs/" + id1 + "/verdicts")
	env1.shutdown() // the "process exit": store closed, runner drained

	env2 := startEnv(t, storeDir, 4)
	id2 := env2.runToDone(jobBody)
	st2 := env2.getStatus(id2)
	_, verdicts2 := env2.fetch("/jobs/" + id2 + "/verdicts")

	if st2.MemoHits <= st1.MemoHits {
		t.Fatalf("restarted run memo hits = %d, want > %d (warm start)", st2.MemoHits, st1.MemoHits)
	}
	if st2.MemoHitRate <= st1.MemoHitRate {
		t.Fatalf("restarted run hit rate = %v, want > %v", st2.MemoHitRate, st1.MemoHitRate)
	}
	if st2.StoreHits == 0 {
		t.Fatalf("restarted run store hits = 0, want the disk store to serve")
	}
	if verdicts1 != verdicts2 {
		t.Fatalf("verdicts changed across the restart:\nrun 1:\n%s\nrun 2:\n%s", verdicts1, verdicts2)
	}
}

func TestVerifydQueueBackpressureAndVerdictConflict(t *testing.T) {
	env := startEnv(t, "", 1)

	// A deliberately long job (single worker) occupies the runner.
	code, slow := env.submitJSON(`{"gen":{"seed":100,"n":200,"config":"wide"},"workers":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("slow submit = %d", code)
	}
	env.waitState(slow.ID, string(stateRunning))

	if code, _ := env.fetch("/jobs/" + slow.ID + "/verdicts"); code != http.StatusConflict {
		t.Fatalf("verdicts of a running job = %d, want 409", code)
	}

	code, queued := env.submitJSON(`{"scenarios":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit = %d, want 202", code)
	}
	if code, _ := env.submitJSON(`{"scenarios":true}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit into a full queue = %d, want 503", code)
	}

	if st := env.waitState(slow.ID, string(stateDone)); st.State != string(stateDone) {
		t.Fatalf("slow job finished as %q (%s)", st.State, st.Error)
	}
	if st := env.waitState(queued.ID, string(stateDone)); st.State != string(stateDone) {
		t.Fatalf("queued job finished as %q (%s)", st.State, st.Error)
	}
	if code, _ := env.fetch("/jobs/" + slow.ID + "/verdicts"); code != http.StatusOK {
		t.Fatalf("verdicts after completion = %d, want 200", code)
	}
}

func TestVerifydDrainRejectsAndCancelsQueued(t *testing.T) {
	env := startEnv(t, "", 4)

	code, slow := env.submitJSON(`{"gen":{"seed":100,"n":200,"config":"wide"},"workers":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("slow submit = %d", code)
	}
	env.waitState(slow.ID, string(stateRunning))
	code, queued := env.submitJSON(`{"scenarios":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit = %d", code)
	}

	env.srv.beginDrain()
	if code, _ := env.submitJSON(`{"scenarios":true}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}
	env.srv.wait()

	if st := env.getStatus(slow.ID); st.State != string(stateDone) {
		t.Fatalf("in-flight job after drain = %q, want done (drain finishes it)", st.State)
	}
	if st := env.getStatus(queued.ID); st.State != string(stateCanceled) {
		t.Fatalf("queued job after drain = %q, want canceled", st.State)
	}
}

func TestVerifydRejectsBadRequests(t *testing.T) {
	env := startEnv(t, "", 4)
	for _, body := range []string{
		`{}`,
		`{"gen":{"seed":1,"n":0}}`,
		`{"gen":{"seed":1,"n":4,"config":"weird"}}`,
		`{"manifest":"{\"seed\":1}","scenarios":true}`,
		`{"unknown_field":1}`,
		`{"gen":{"seed":1,"n":4},"shard_count":2,"shard_index":5}`,
		`{"manifest":"not a manifest line"}`,
		`{"gen":{"seed":1,"n":4},"deadline_ms":-5}`,
		`not json at all`,
	} {
		if code, _ := env.submitJSON(body); code != http.StatusBadRequest {
			t.Errorf("submit %s = %d, want 400", body, code)
		}
	}
}

// TestVerifydJobCost is the cost-attribution acceptance check: the job
// status carries a populated ledger, the verdict lines carry the
// deterministic per-instance figures, and the per-instance figures sum
// exactly to the job-level ones.
func TestVerifydJobCost(t *testing.T) {
	env := startEnv(t, "", 4)
	id := env.runToDone(`{"gen":{"seed":7,"n":6,"config":"wide"}}`)
	st := env.getStatus(id)
	if st.Cost == nil {
		t.Fatal("done job without a cost block")
	}
	if st.Cost.CPUNS <= 0 || st.Cost.PeakStates <= 0 || st.Cost.CTLWords <= 0 {
		t.Fatalf("implausible job cost: %+v", st.Cost)
	}

	_, verdicts := env.fetch("/jobs/" + id + "/verdicts")
	var peakSum, wordSum int64
	for _, line := range nonEmptyLines(verdicts) {
		var v verdictLine
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("bad verdict line %q: %v", line, err)
		}
		if v.Error == "" && v.Cost == nil {
			t.Fatalf("verdict line without cost: %s", line)
		}
		if v.Cost != nil {
			peakSum += v.Cost.PeakStates
			wordSum += v.Cost.CTLWords
		}
	}
	if peakSum != st.Cost.PeakStates || wordSum != st.Cost.CTLWords {
		t.Fatalf("verdict-line sums (states %d, words %d) != job cost (states %d, words %d)",
			peakSum, wordSum, st.Cost.PeakStates, st.Cost.CTLWords)
	}
}

// TestVerifydReadyz splits the probes: /healthz is pure liveness and
// stays 200 through a drain, /readyz flips to 503 with the reason.
func TestVerifydReadyz(t *testing.T) {
	env := startEnv(t, "", 4)
	if code, body := env.fetch("/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("fresh /readyz = %d %q, want 200 ok", code, body)
	}
	env.srv.beginDrain()
	if code, body := env.fetch("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining /readyz = %d %q, want 503 draining", code, body)
	}
	if code, _ := env.fetch("/healthz"); code != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want liveness to stay 200", code)
	}
}

// TestVerifydOverloadShedsAndRecovers drives the admission controller
// through its heap watermarks directly (standing in for the sampler):
// while overloaded, POST /jobs answers 503 + Retry-After and /readyz
// fails; once pressure falls below the low watermark, intake recovers.
func TestVerifydOverloadShedsAndRecovers(t *testing.T) {
	env := startEnv(t, "", 4, func(cfg *serverConfig) {
		cfg.Overload = obs.NewOverload(obs.OverloadOptions{
			HeapHighBytes: 1 << 30, HeapLowBytes: 1 << 29,
		})
	})

	env.srv.overload.ObserveHeap(1 << 30)
	resp, err := http.Post(env.base+"/jobs", "application/json", strings.NewReader(`{"scenarios":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while overloaded = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After header")
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("503 body %q does not name the overload", body)
	}
	if code, rb := env.fetch("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(rb, "overloaded") {
		t.Fatalf("overloaded /readyz = %d %q, want 503 overloaded", code, rb)
	}
	if code, pb := env.fetch("/progress"); code != http.StatusOK || !strings.Contains(pb, `"overloaded":true`) {
		t.Fatalf("progress = %d %q, want overloaded:true", code, pb)
	}

	env.srv.overload.ObserveHeap(1 << 28)
	if code, _ := env.fetch("/readyz"); code != http.StatusOK {
		t.Fatalf("recovered /readyz = %d, want 200", code)
	}
	code, st := env.submitJSON(`{"scenarios":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit after recovery = %d, want 202", code)
	}
	env.waitState(st.ID, string(stateDone))
}

// TestVerifydShutdownLeaksNoGoroutines pins the service lifecycle: a
// drain-and-close must return the process to its pre-start goroutine
// count — no leaked runner, HTTP, or store goroutines.
func TestVerifydShutdownLeaksNoGoroutines(t *testing.T) {
	http.DefaultClient.CloseIdleConnections()
	before := runtime.NumGoroutine()

	env := startEnv(t, t.TempDir(), 4)
	env.runToDone(`{"gen":{"seed":2,"n":3}}`)
	env.shutdown()

	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines %d -> %d after shutdown; stacks:\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}

func nameOf(t *testing.T, line string) string {
	t.Helper()
	var v verdictLine
	if err := json.Unmarshal([]byte(line), &v); err != nil {
		t.Fatalf("bad verdict line %q: %v", line, err)
	}
	return v.Name
}
